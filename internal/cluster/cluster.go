// Package cluster implements the discrete-event simulation of an LLM
// inference row (paper §6.4): a PDU-level power domain containing GPU
// servers that serve BLOOM-class inference requests, a row manager sampling
// aggregate power every 2 s, an out-of-band actuation pipeline with the
// paper's 40 s latency and silent-failure behaviour, and the UPS-protecting
// power brake.
//
// A power-management policy plugs in through the Controller interface; the
// polca package provides the paper's dual-threshold policy and the
// baselines it is compared against.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"polca/internal/faults"
	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/obs"
	"polca/internal/plan"
	"polca/internal/serve"
	"polca/internal/server"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// RowConfig describes the simulated row (paper Table 2 plus the
// oversubscription knobs of §6.5).
type RowConfig struct {
	// BaseServers is the number of servers the row's power budget was
	// provisioned for (Table 2: 40).
	BaseServers int
	// AddedFraction is the oversubscription level: 0.30 deploys 30% more
	// servers under the same power budget.
	AddedFraction float64
	// LowPriorityFraction is the share of servers allocated to the
	// low-priority pool (the allocator's priority mix, §6.3).
	LowPriorityFraction float64
	// ProvisionedPerServerWatts is the derated per-server power slice the
	// row budget is built from (§5: derating reclaims the gap between the
	// 6.5 kW rating and realistic peaks).
	ProvisionedPerServerWatts float64

	// Model and DType describe the served model (the paper evaluates
	// BLOOM-176B, its worst-case capping workload).
	Model llm.Model
	DType llm.DType

	// Classes is the workload mix (defaults to Table 6).
	Classes []workload.Class

	// TelemetryInterval is the row manager sampling period (Table 2: 2 s).
	TelemetryInterval time.Duration
	// BrakeLatency is the power-brake engage latency (Table 2: 5 s).
	BrakeLatency time.Duration
	// OOBLatency is the frequency/power capping actuation latency
	// (Table 2: 40 s).
	OOBLatency time.Duration
	// OOBFailureProb is the chance an OOB command fails silently (§3.3).
	OOBFailureProb float64
	// BrakeUtil is the row utilization that triggers a power brake.
	BrakeUtil float64
	// BrakeReleaseUtil is the utilization below which the brake releases.
	BrakeReleaseUtil float64
	// BrakeHold is the minimum time a brake stays engaged once applied —
	// operators release the emergency lever conservatively, and instant
	// release would oscillate (the hysteresis failure mode of §6.1).
	BrakeHold time.Duration

	// PowerIntensity scales GPU power draw (1.05 models workloads becoming
	// 5% more power-intensive than profiled, §6.6).
	PowerIntensity float64

	// Faults configures deterministic fault injection (zero value = no
	// faults); see the faults package for the scenario DSL. Injection draws
	// only from its own named random streams, so a disabled spec leaves the
	// simulation byte-identical.
	Faults faults.Spec

	// WatchdogEpochs arms the row-side deadman watchdog: after this many
	// consecutive telemetry epochs without controller contact the row
	// self-caps both pools at the watchdog clocks. 0 disables (the
	// pre-hardening behaviour).
	WatchdogEpochs int
	// WatchdogLPMHz and WatchdogHPMHz are the watchdog's conservative
	// self-cap clocks; zero values default to the Table 5 deep caps
	// (1110 MHz low priority, 1305 MHz high priority).
	WatchdogLPMHz float64
	WatchdogHPMHz float64

	// OOBRetryBudget bounds how many times one desired-lock change may be
	// issued to a server before the row stops retrying it (0 = retry
	// forever, the pre-hardening behaviour).
	OOBRetryBudget int
	// OOBRetryBackoff delays each re-issue after a failed command, doubling
	// per consecutive failure of the same target (0 = re-issue on the next
	// telemetry tick).
	OOBRetryBackoff time.Duration

	// TTFTSLO is the time-to-first-token SLO threshold behind the TSDB's
	// SLO counters (row.ttft_ok / row.ttft_total) that burn-rate alert
	// rules consume in serve mode. Zero defaults to 15 s. Telemetry-only:
	// it never affects scheduling or admission.
	TTFTSLO time.Duration

	// Serve switches the row from the slot model to the request-level
	// serving backend: one continuous-batching serve.Replica per server,
	// with arrivals spread by the configured router. Nil (the default) keeps
	// the slot model; a pointer to the zero Config serves the row's own
	// Model/DType with the serve package defaults. See serverow.go.
	Serve *serve.Config

	// DropStaleOOB makes the row discard an in-flight command whose target
	// was superseded before it landed, instead of applying the outdated
	// lock. Off (the default), a landed command applies whatever value it
	// carried — what a BMC without sequence numbers does, and the paper
	// figures' historical behaviour. The hardened configurations turn this
	// on so a revoked decision can never actuate late.
	DropStaleOOB bool

	// Seed drives all of the row's randomness.
	Seed int64
}

// Production returns the paper's production row configuration (Table 2)
// serving BLOOM-176B.
func Production() RowConfig {
	return RowConfig{
		BaseServers:               40,
		AddedFraction:             0,
		LowPriorityFraction:       0.5,
		ProvisionedPerServerWatts: 4600,
		Model:                     llm.MustByName("BLOOM-176B"),
		DType:                     llm.FP16,
		Classes:                   workload.Table6(),
		TelemetryInterval:         2 * time.Second,
		BrakeLatency:              5 * time.Second,
		OOBLatency:                40 * time.Second,
		OOBFailureProb:            0.02,
		BrakeUtil:                 1.0,
		BrakeReleaseUtil:          0.92,
		BrakeHold:                 30 * time.Second,
		PowerIntensity:            1.0,
		Seed:                      1,
	}
}

// MeanServiceSeconds estimates the mean uncapped end-to-end service time
// of requests at the given priority, from the class mix and the inference
// plan model (class means of input/output sizes).
func (c RowConfig) MeanServiceSeconds(p workload.Priority) float64 {
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	var wsum, tsum float64
	for _, cl := range c.Classes {
		w := cl.Share * cl.LowShare
		if p == workload.High {
			w = cl.Share * (1 - cl.LowShare)
		}
		if w <= 0 {
			continue
		}
		pl, err := plan.NewInference(plan.InferenceConfig{
			Model: c.Model, DType: c.DType, BatchSize: 1,
			InputTokens:  (cl.PromptMin + cl.PromptMax) / 2,
			OutputTokens: (cl.OutputMin + cl.OutputMax) / 2,
		})
		if err != nil {
			continue
		}
		var dur time.Duration
		for _, ph := range pl.Phases() {
			dur += dev.Run(ph).Duration
		}
		wsum += w
		tsum += w * dur.Seconds()
	}
	if wsum == 0 {
		return 1
	}
	return tsum / wsum
}

// BusyServerWatts estimates the mean server power while serving a request
// (mix-weighted mean over classes and priorities).
func (c RowConfig) BusyServerWatts() float64 {
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	srv := server.New(0, server.DGXA100(gpu.A100SXM80GB()))
	var esum, tsum float64
	for _, cl := range c.Classes {
		pl, err := plan.NewInference(plan.InferenceConfig{
			Model: c.Model, DType: c.DType, BatchSize: 1,
			InputTokens:  (cl.PromptMin + cl.PromptMax) / 2,
			OutputTokens: (cl.OutputMin + cl.OutputMax) / 2,
		})
		if err != nil {
			continue
		}
		for _, ph := range pl.Phases() {
			e := dev.Run(ph)
			esum += cl.Share * e.Energy()
			tsum += cl.Share * e.Duration.Seconds()
		}
	}
	if tsum == 0 {
		return srv.IdleWatts()
	}
	gpuW := esum / tsum * float64(srv.Spec().GPUCount) * c.PowerIntensity
	return srv.PowerFromGPUs(gpuW)
}

// IdleServerWatts returns the power of an idle server.
func (c RowConfig) IdleServerWatts() float64 {
	return server.New(0, server.DGXA100(gpu.A100SXM80GB())).IdleWatts()
}

// Shape returns the trace.ClusterShape used to fit an arrival plan for
// this row: the *base* server count (arrival volume is what the original
// row served; oversubscription scales it separately via RatePlan.Scale)
// with the effective aggregate service time 1/λ when both pools run at
// equal busy fractions.
func (c RowConfig) Shape() trace.ClusterShape {
	sLP := c.MeanServiceSeconds(workload.Low)
	sHP := c.MeanServiceSeconds(workload.High)
	lp := c.LowPriorityFraction
	// λ_total = busy · N · (lp/sLP + (1-lp)/sHP)  ⇒  S_eff = 1/(lp/sLP + …)
	denom := lp/sLP + (1-lp)/sHP
	return trace.ClusterShape{
		Servers:          c.BaseServers,
		ProvisionedWatts: c.ProvisionedWatts(),
		IdleServerWatts:  c.IdleServerWatts(),
		BusyServerWatts:  c.BusyServerWatts(),
		MeanServiceSec:   1 / denom,
	}
}

// Servers returns the deployed server count including oversubscription.
func (c RowConfig) Servers() int {
	n := int(float64(c.BaseServers)*(1+c.AddedFraction) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// ProvisionedWatts returns the row power budget. It does not grow with
// AddedFraction — that is the point of oversubscription.
func (c RowConfig) ProvisionedWatts() float64 {
	return float64(c.BaseServers) * c.ProvisionedPerServerWatts
}

// Validate reports whether the configuration is usable.
func (c RowConfig) Validate() error {
	switch {
	case c.BaseServers <= 0:
		return fmt.Errorf("cluster: no servers")
	case c.AddedFraction < 0 || c.AddedFraction > 1:
		return fmt.Errorf("cluster: added fraction %v outside [0,1]", c.AddedFraction)
	case c.LowPriorityFraction < 0 || c.LowPriorityFraction > 1:
		return fmt.Errorf("cluster: low-priority fraction %v outside [0,1]", c.LowPriorityFraction)
	case c.ProvisionedPerServerWatts <= 0:
		return fmt.Errorf("cluster: no per-server budget")
	case c.Model.Params <= 0:
		return fmt.Errorf("cluster: no model")
	case c.TelemetryInterval <= 0 || c.BrakeLatency <= 0 || c.OOBLatency <= 0:
		return fmt.Errorf("cluster: non-positive latency")
	case c.BrakeHold < 0:
		return fmt.Errorf("cluster: negative brake hold")
	case c.OOBFailureProb < 0 || c.OOBFailureProb >= 1:
		return fmt.Errorf("cluster: bad OOB failure probability %v", c.OOBFailureProb)
	case c.BrakeUtil <= 0 || c.BrakeReleaseUtil <= 0 || c.BrakeReleaseUtil > c.BrakeUtil:
		return fmt.Errorf("cluster: bad brake thresholds")
	case c.PowerIntensity <= 0:
		return fmt.Errorf("cluster: bad power intensity")
	case c.WatchdogEpochs < 0:
		return fmt.Errorf("cluster: negative watchdog epochs")
	case c.WatchdogLPMHz < 0 || c.WatchdogHPMHz < 0:
		return fmt.Errorf("cluster: negative watchdog clock")
	case c.OOBRetryBudget < 0:
		return fmt.Errorf("cluster: negative OOB retry budget")
	case c.OOBRetryBackoff < 0:
		return fmt.Errorf("cluster: negative OOB retry backoff")
	case c.TTFTSLO < 0:
		return fmt.Errorf("cluster: negative TTFT SLO")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	// The serve config needs the GPU spec to validate fully (model fit, KV
	// headroom); NewRow does that in initServe. Here we only reject an
	// obviously broken router name early.
	if c.Serve != nil && c.Serve.Router != "" {
		if _, err := serve.NewRouter(c.Serve.Router); err != nil {
			return err
		}
	}
	if err := workload.Validate(c.Classes); err != nil {
		return err
	}
	return nil
}

// Actuator is the control surface a power-management policy drives. All
// actions go through the OOB pipeline: they take effect after the
// configured latency and may fail silently (the row re-issues unapplied
// commands on each telemetry tick, modelling the guardrails §3.3 demands).
type Actuator interface {
	// SetPoolLock requests every server of the pool to lock its GPUs' SM
	// clock at mhz; 0 requests an unlock.
	SetPoolLock(p workload.Priority, mhz float64)
	// PoolLock returns the currently *desired* lock for the pool (0 = none).
	PoolLock(p workload.Priority) float64
	// GPUSpec returns the GPU SKU, so policies can reference its clocks.
	GPUSpec() gpu.Spec
	// Observer returns the run's observability sink (nil when disabled) so
	// policies can trace their decisions. Observation is read-only with
	// respect to the simulation: emitting events must never change control
	// behaviour.
	Observer() *obs.Observer
}

// Controller is a row power-management policy. OnTelemetry runs at every
// row-manager sample with the current utilization (row power divided by
// provisioned power).
type Controller interface {
	Name() string
	OnTelemetry(now sim.Time, util float64, act Actuator)
}

// Restartable is an optional Controller extension. Reset returns the
// controller to its cold-start state; the row invokes it when a crashed
// controller restarts, modelling a process restart that loses all
// hysteresis and engagement state.
type Restartable interface {
	Reset()
}

// TelemetryLossAware is an optional Controller extension. On epochs where
// the telemetry sample was lost (dropout or blackout), the row invokes
// OnTelemetryLoss instead of OnTelemetry, so hardened controllers can
// track staleness and apply fail-safe caps instead of flying blind.
// Controllers without it simply see no callback on lost epochs — which the
// deadman watchdog treats as controller silence.
type TelemetryLossAware interface {
	Controller
	OnTelemetryLoss(now sim.Time, act Actuator)
}

// Metrics aggregates one simulation run.
type Metrics struct {
	Config      RowConfig
	Policy      string
	Provisioned float64
	// Util is the row-manager utilization series (2 s samples).
	Util stats.Series
	// LatencySec holds end-to-end request latencies (queueing included).
	LatencySec map[workload.Priority][]float64
	// Arrived and Completed count requests per priority.
	Arrived   map[workload.Priority]int
	Completed map[workload.Priority]int
	// BusySec accumulates service time (excluding queueing) per priority.
	BusySec map[workload.Priority]float64
	// Dropped counts requests shed because the row's buffering (one
	// request per server, §6.6) was exhausted.
	Dropped map[workload.Priority]int
	// BrakeEvents counts power-brake engagements (Figure 18's metric).
	BrakeEvents int
	// LockCommands and FailedCommands count OOB actuation traffic.
	LockCommands   int
	FailedCommands int
	// MaxQueueLen is the deepest central spillover queue observed.
	MaxQueueLen int

	// Degraded-mode accounting (all zero on a healthy, unhardened run).
	// StaleOOBDrops counts in-flight commands discarded at landing because
	// the desired lock changed while they were in flight.
	StaleOOBDrops int
	// OOBRetries counts re-issues of a desired lock after a failed or
	// dropped command; OOBRetriesExhausted counts targets abandoned after
	// the retry budget ran out.
	OOBRetries          int
	OOBRetriesExhausted int
	// WatchdogEngagements counts deadman-watchdog self-caps.
	WatchdogEngagements int
	// NodeDeaths counts server down-transitions from injected kill windows.
	NodeDeaths int
	// Faults tallies what the injector actually injected during the run.
	Faults faults.Counts

	// Serve-mode accounting (populated only when Config.Serve is non-nil).
	// TTFT and TBT hold per-class streaming sketches of time-to-first-token
	// and mean time-between-tokens (keyed by Table 6 class name) — bounded
	// memory regardless of run length, unlike the full slices they replaced.
	TTFT map[string]*obs.Digest
	TBT  map[string]*obs.Digest
	// ClassEnergyJ and ClassTokens accumulate per-class attributed GPU
	// energy (tensor-parallel-group joules) and generated tokens, including
	// the partial progress of dropped requests so energy stays conserved.
	ClassEnergyJ map[string]float64
	ClassTokens  map[string]int64
	// Serve aggregates the replicas' scheduler counters.
	Serve ServeStats
}

// Throughput returns completed requests per server-second for the pool.
func (m Metrics) Throughput(p workload.Priority, poolServers int) float64 {
	if poolServers <= 0 || m.Util.Duration() <= 0 {
		return 0
	}
	return float64(m.Completed[p]) / float64(poolServers) / m.Util.Duration().Seconds()
}

// node is one simulated server.
type node struct {
	idx int
	pri workload.Priority
	srv *server.Server
	dev *gpu.Device // representative device; all 8 GPUs behave identically

	desiredLock float64
	appliedLock float64
	cmdInFlight bool

	// dead marks the node as inside an injected kill window: it draws no
	// power, serves nothing, and revives cold when the window ends.
	dead bool

	// Retry bookkeeping for the current desired-lock target: how many
	// commands were issued for it, the backoff gate, and whether the retry
	// budget is exhausted. All reset when the desired lock changes.
	retryTarget float64
	retryCount  int
	retryWait   sim.Time
	retryDead   bool

	active *activeReq

	// rep is the node's serving replica in serve mode (nil in slot mode);
	// it replaces active as the source of busy time and power.
	rep *serve.Replica

	// Telemetry-sampling constants, cached at construction: the idle draw
	// of the representative device and the GPU-group scale (device power →
	// aggregate GPU power). nodePower runs on every sub-tick for every
	// node, and fetching these through the spec copies it each time.
	gpuIdleW float64
	gpuScale float64
}

// activeReq tracks the request a node is executing.
type activeReq struct {
	req        workload.Request
	remaining  []gpu.Phase
	exec       gpu.Exec
	phaseStart sim.Time
	timer      sim.Timer
	started    sim.Time
}

// Row is the simulated PDU power domain.
type Row struct {
	cfg     RowConfig
	eng     *sim.Engine
	ctrl    Controller
	nodes   []*node
	pools   map[workload.Priority][]*node
	frontQ  map[workload.Priority][]workload.Request
	busy    map[workload.Priority]int
	sampler *workload.Sampler

	// Admission gate state: the fleet balancer routes this row its share
	// of traffic, so the busy-server count tracks the offered-load curve
	// (±slack) instead of open-loop Poisson fluctuation.
	arrivalPlan trace.RatePlan
	svcEffSec   float64                                   // aggregate S at full clocks
	svcBase     map[workload.Priority]float64             // per-pool S at full clocks
	svcAtLock   map[workload.Priority]map[float64]float64 // per-pool S per lock MHz

	dispatchRNG *rand.Rand
	oobRNG      *rand.Rand

	// lowArrivalProb is the probability an arrival targets the low pool,
	// sized so both pools run at equal busy fractions despite different
	// mean service times.
	lowArrivalProb float64

	// Sub-interval power accumulation for interval-averaged row readings.
	powerSum     float64
	powerSamples int

	braked       bool
	brakePending bool
	brakeHeld    sim.Time // earliest release time

	// Fault-injection runtime (nil = no faults) and degraded-mode state.
	inj *faults.Injector
	// lastReading is the previous telemetry value delivered to the
	// controller, which stuck-at windows repeat.
	lastReading float64
	haveReading bool
	// ctrlDown tracks an in-progress controller crash; ctrlSilent counts
	// consecutive epochs without controller contact (for the watchdog).
	ctrlDown        bool
	ctrlSilent      int
	watchdogEngaged bool
	wdLPMHz         float64
	wdHPMHz         float64

	telemetryTick sim.Timer
	telemetrySub  sim.Timer

	metrics *Metrics

	// Observability handles, cached at construction so the hot paths pay a
	// single nil-receiver branch when disabled. cmdsInFlight counts issued
	// OOB commands that have not landed yet (for trace reconciliation).
	obs          *obs.Observer
	tracer       *obs.Tracer
	utilGauge    *obs.Gauge
	utilHist     *obs.Histogram
	arrivedCtr   [2]*obs.Counter // indexed by workload.Priority
	completedCtr [2]*obs.Counter
	droppedCtr   [2]*obs.Counter
	lockCmdCtr   *obs.Counter
	failedCmdCtr *obs.Counter
	brakeCtr     *obs.Counter
	cmdsInFlight int

	// tsdb is the sim-time TSDB wiring (nil unless the observer carries a
	// TSDB); see tsdbwire.go.
	tsdb *rowTSDB

	// Serve-mode runtime (zero in slot mode): the resolved serving config,
	// one router per priority pool, and reusable routing scratch slices.
	serveCfg   serve.Config
	routers    [2]serve.Router
	serveEps   [2][]serve.Endpoint
	serveNodes [2][]*node
}

// NewRow builds a row on the engine with the given policy. It returns an
// error for an invalid configuration — configurations reach this point from
// CLI flags and experiment specs, so rejecting them is the library's job,
// not a crash. A nil controller remains a panic: no caller constructs one
// dynamically.
func NewRow(eng *sim.Engine, cfg RowConfig, ctrl Controller) (*Row, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctrl == nil {
		panic("cluster: nil controller")
	}
	spec := server.DGXA100(gpu.A100SXM80GB())
	r := &Row{
		cfg:         cfg,
		eng:         eng,
		ctrl:        ctrl,
		pools:       map[workload.Priority][]*node{},
		frontQ:      map[workload.Priority][]workload.Request{},
		busy:        map[workload.Priority]int{},
		sampler:     workload.NewSampler(cfg.Classes, eng.Rand("workload")),
		dispatchRNG: eng.Rand("dispatch"),
		oobRNG:      eng.Rand("oob"),
		metrics: &Metrics{
			Config:      cfg,
			Policy:      ctrl.Name(),
			Provisioned: cfg.ProvisionedWatts(),
			LatencySec:  map[workload.Priority][]float64{},
			Arrived:     map[workload.Priority]int{},
			Completed:   map[workload.Priority]int{},
			BusySec:     map[workload.Priority]float64{},
			Dropped:     map[workload.Priority]int{},
		},
	}
	total := cfg.Servers()
	lp := int(float64(total)*cfg.LowPriorityFraction + 0.5)
	for i := 0; i < total; i++ {
		pri := workload.High
		if i < lp {
			pri = workload.Low
		}
		s := server.New(i, spec)
		n := &node{idx: i, pri: pri, srv: s, dev: s.GPUs()[0]}
		n.gpuIdleW = n.dev.Spec().IdleWatts
		n.gpuScale = float64(s.Spec().GPUCount) * cfg.PowerIntensity
		r.nodes = append(r.nodes, n)
		r.pools[pri] = append(r.pools[pri], n)
	}
	// Arrival split: pool weight ∝ poolSize / meanServiceTime, so equal
	// arrival pressure translates into equal busy fractions.
	sLow := cfg.MeanServiceSeconds(workload.Low)
	sHigh := cfg.MeanServiceSeconds(workload.High)
	wLow := float64(len(r.pools[workload.Low])) / sLow
	wHigh := float64(len(r.pools[workload.High])) / sHigh
	if wLow+wHigh > 0 {
		r.lowArrivalProb = wLow / (wLow + wHigh)
	}
	r.svcBase = map[workload.Priority]float64{workload.Low: sLow, workload.High: sHigh}
	r.svcAtLock = map[workload.Priority]map[float64]float64{
		workload.Low: {0: sLow}, workload.High: {0: sHigh},
	}
	r.svcEffSec = cfg.Shape().MeanServiceSec
	if o := eng.Observer(); o != nil {
		r.obs = o
		r.tracer = o.Trace()
		r.utilGauge = o.Gauge("row_util")
		r.utilHist = o.Histogram("row_util_seconds", obs.DefaultUtilBuckets)
		for _, p := range []workload.Priority{workload.Low, workload.High} {
			lbl := obs.Label("priority", p.String())
			r.arrivedCtr[p] = o.Counter(obs.MergeLabels("row_requests_arrived_total", lbl))
			r.completedCtr[p] = o.Counter(obs.MergeLabels("row_requests_completed_total", lbl))
			r.droppedCtr[p] = o.Counter(obs.MergeLabels("row_requests_dropped_total", lbl))
		}
		r.lockCmdCtr = o.Counter("row_oob_commands_total")
		r.failedCmdCtr = o.Counter("row_oob_failures_total")
		r.brakeCtr = o.Counter("row_brake_events_total")
		r.initTSDB(o)
	}
	// The injector is nil for an empty spec, so the unfaulted hot paths pay
	// one branch. Its streams are named, independent draws from the engine:
	// creating them perturbs nothing.
	r.inj = faults.New(cfg.Faults, total, eng.Rand)
	if cfg.Serve != nil {
		if err := r.initServe(); err != nil {
			return nil, err
		}
	}
	r.wdLPMHz, r.wdHPMHz = cfg.WatchdogLPMHz, cfg.WatchdogHPMHz
	if r.wdLPMHz == 0 {
		r.wdLPMHz = 1110
	}
	if r.wdHPMHz == 0 {
		r.wdHPMHz = 1305
	}
	return r, nil
}

// MustRow is NewRow for programmatically built configurations known to be
// valid (tests, examples, benchmarks); it panics on error.
func MustRow(eng *sim.Engine, cfg RowConfig, ctrl Controller) *Row {
	r, err := NewRow(eng, cfg, ctrl)
	if err != nil {
		panic(err)
	}
	return r
}

// Metrics returns the run's metrics (live; read after the run completes).
func (r *Row) Metrics() *Metrics { return r.metrics }

// PoolSize returns the number of servers in a priority pool.
func (r *Row) PoolSize(p workload.Priority) int { return len(r.pools[p]) }

// GPUSpec implements Actuator.
func (r *Row) GPUSpec() gpu.Spec { return gpu.A100SXM80GB() }

// Observer implements Actuator.
func (r *Row) Observer() *obs.Observer { return r.obs }

// InFlightCommands returns the number of issued OOB commands that have not
// yet landed or failed — the trace reconciliation remainder: issues =
// applies + releases + failures + in-flight.
func (r *Row) InFlightCommands() int { return r.cmdsInFlight }

// PoolLock implements Actuator.
func (r *Row) PoolLock(p workload.Priority) float64 {
	ns := r.pools[p]
	if len(ns) == 0 {
		return 0
	}
	return ns[0].desiredLock
}

// PoolAppliedLocks returns the SM-clock locks actually applied on each
// server of the pool (0 = unlocked), for inspection and tests.
func (r *Row) PoolAppliedLocks(p workload.Priority) []float64 {
	out := make([]float64, 0, len(r.pools[p]))
	for _, n := range r.pools[p] {
		out = append(out, n.appliedLock)
	}
	return out
}

// SetPoolLock implements Actuator. The desired state is recorded
// immediately; the OOB pipeline applies it per server with latency and
// possible silent failures, re-issuing on subsequent telemetry ticks.
func (r *Row) SetPoolLock(p workload.Priority, mhz float64) {
	if r.tracer != nil && r.PoolLock(p) != mhz {
		r.tracer.Emit(obs.Event{
			At: r.eng.Now(), Kind: obs.KindCapRequest,
			Server: -1, Pool: int8(p), MHz: mhz,
		})
	}
	for _, n := range r.pools[p] {
		n.desiredLock = mhz
	}
}

// Run simulates the row serving the arrival plan until its horizon plus a
// drain margin, and returns the metrics.
func (r *Row) Run(arrivals trace.RatePlan) *Metrics {
	r.arrivalPlan = arrivals
	horizon := arrivals.Horizon()
	arrRNG := r.eng.Rand("arrivals")

	// Online arrival generation: one pending event at a time.
	var scheduleNext func(after sim.Time)
	scheduleNext = func(after sim.Time) {
		next, ok := arrivals.NextAfter(after, arrRNG)
		if !ok {
			return
		}
		r.eng.At(next, func(now sim.Time) {
			r.arrive(now)
			scheduleNext(now)
		})
	}
	scheduleNext(0)

	r.startTelemetry()
	r.eng.RunUntil(horizon)
	r.stopTelemetry()
	r.scheduleTSDBFinish()
	// Drain in-flight work so tail latencies are recorded.
	r.eng.RunUntil(horizon + 30*time.Minute)
	r.metrics.Faults = r.inj.Counts()
	r.finalizeServe()
	r.finishTSDB()
	return r.metrics
}

// startTelemetry arms the row manager: sub-interval power accumulation
// (the row manager reports interval means, not instantaneous values, which
// is what smooths sub-second prompt spikes out of row readings) and the
// 2 s telemetry/control tick.
func (r *Row) startTelemetry() {
	subStep := r.cfg.TelemetryInterval / 8
	if subStep <= 0 {
		subStep = r.cfg.TelemetryInterval
	}
	r.telemetrySub = r.eng.EveryFrom(r.eng.Now()+subStep, subStep, func(now sim.Time) {
		r.powerSum += r.instantUtilization(now)
		r.powerSamples++
	})
	r.telemetryTick = r.eng.EveryFrom(r.eng.Now()+r.cfg.TelemetryInterval, r.cfg.TelemetryInterval, func(now sim.Time) {
		r.updateServerFaults(now)
		util := r.instantUtilization(now)
		if r.powerSamples > 0 {
			util = r.powerSum / float64(r.powerSamples)
		}
		r.powerSum, r.powerSamples = 0, 0
		r.metrics.Util.Values = append(r.metrics.Util.Values, util)
		r.utilGauge.Set(util)
		r.utilHist.Observe(util, r.cfg.TelemetryInterval)
		// The brake and the recorded utilization see the physical power: the
		// UPS measures at the breaker, below every faultable sensor.
		r.brakeLogic(util)
		r.controllerTick(now, util)
		r.pumpCommands(now)
		r.tryAdmit(workload.Low, now)
		r.tryAdmit(workload.High, now)
		r.tsdbTick(now, util)
	})
	r.metrics.Util.Step = r.cfg.TelemetryInterval
	r.metrics.Util.Start = r.eng.Now() + r.cfg.TelemetryInterval
}

// stopTelemetry disarms the row manager.
func (r *Row) stopTelemetry() {
	r.telemetryTick.Stop()
	r.telemetrySub.Stop()
}

// controllerTick runs the control half of a telemetry epoch: it passes the
// row reading through the fault model, delivers it to the controller (or
// records controller silence), and drives the crash-recovery and deadman
// paths. Without an injector it reduces to the single pre-hardening call.
func (r *Row) controllerTick(now sim.Time, trueUtil float64) {
	if r.inj == nil {
		r.ctrl.OnTelemetry(now, trueUtil, r)
		return
	}
	if r.inj.ControllerDown(now, r.cfg.TelemetryInterval) {
		if !r.ctrlDown {
			r.ctrlDown = true
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{At: now, Kind: obs.KindCtrlCrash, Server: -1, Pool: obs.PoolNone})
			}
		}
		r.controllerSilent(now)
		return
	}
	if r.ctrlDown {
		// The controller restarts cold: a real process restart loses every
		// engaged threshold and hysteresis timer.
		r.ctrlDown = false
		if rs, ok := r.ctrl.(Restartable); ok {
			rs.Reset()
		}
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{At: now, Kind: obs.KindCtrlRestart, Server: -1, Pool: obs.PoolNone})
		}
	}
	if r.inj.MissedTick() {
		r.controllerSilent(now)
		return
	}
	reading, ok := r.inj.Telemetry(now, trueUtil, r.lastReading, r.haveReading)
	if !ok {
		if la, aware := r.ctrl.(TelemetryLossAware); aware {
			// The controller is alive and knows the sample is missing — that
			// is contact, not silence.
			r.controllerContact(now)
			la.OnTelemetryLoss(now, r)
		} else {
			r.controllerSilent(now)
		}
		return
	}
	r.lastReading, r.haveReading = reading, true
	r.controllerContact(now)
	r.ctrl.OnTelemetry(now, reading, r)
}

// controllerContact resets the deadman counter and releases the watchdog:
// the resumed controller reasserts its desired pool locks on this same
// tick (every policy re-emits them unconditionally), superseding the
// watchdog's conservative caps.
func (r *Row) controllerContact(now sim.Time) {
	r.ctrlSilent = 0
	if r.watchdogEngaged {
		r.watchdogEngaged = false
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{At: now, Kind: obs.KindWatchdogRelease, Server: -1, Pool: obs.PoolNone})
		}
	}
}

// controllerSilent records one epoch of controller silence and engages the
// deadman watchdog once the configured patience runs out: with no policy
// reacting to power, the row self-caps to the conservative clocks rather
// than leaving oversubscribed servers uncapped until the brake fires.
func (r *Row) controllerSilent(now sim.Time) {
	r.ctrlSilent++
	if r.cfg.WatchdogEpochs <= 0 || r.watchdogEngaged || r.ctrlSilent < r.cfg.WatchdogEpochs {
		return
	}
	r.watchdogEngaged = true
	r.metrics.WatchdogEngagements++
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindWatchdogEngage, Server: -1, Pool: obs.PoolNone,
			Value: float64(r.ctrlSilent),
		})
	}
	r.SetPoolLock(workload.Low, r.wdLPMHz)
	r.SetPoolLock(workload.High, r.wdHPMHz)
}

// updateServerFaults applies node death and revival transitions at epoch
// granularity. A dying node loses its active request (counted as dropped)
// and draws no power; a reviving node comes back cold — clocks unlocked,
// brake state resynced — and is re-capped through the normal OOB pipeline.
func (r *Row) updateServerFaults(now sim.Time) {
	if r.inj == nil {
		return
	}
	for _, n := range r.nodes {
		dead := r.inj.ServerDead(n.idx, now)
		if dead == n.dead {
			continue
		}
		if dead {
			n.dead = true
			r.inj.CountNodeDeath()
			r.metrics.NodeDeaths++
			if n.rep != nil {
				// The replica's OnDrop callback records each lost request.
				n.rep.Fail(now)
			} else if a := n.active; a != nil {
				a.timer.Stop()
				n.active = nil
				r.busy[a.req.Priority]--
				r.metrics.Dropped[a.req.Priority]++
				r.droppedCtr[a.req.Priority].Inc()
				if r.tracer != nil {
					r.tracer.Emit(obs.Event{
						At: now, Kind: obs.KindDrop, Server: int32(n.idx),
						Pool: int8(a.req.Priority), Reason: "node-death",
					})
				}
			}
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{At: now, Kind: obs.KindNodeDeath, Server: int32(n.idx), Pool: int8(n.pri)})
			}
		} else {
			n.dead = false
			n.appliedLock = 0
			n.dev.LockClock(0)
			n.dev.SetBrake(r.braked)
			n.retryTarget, n.retryCount, n.retryWait, n.retryDead = 0, 0, 0, false
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{At: now, Kind: obs.KindNodeRevive, Server: int32(n.idx), Pool: int8(n.pri)})
			}
		}
	}
}

// arrive admits one request: pick the pool proportionally to its size, draw
// the request, dispatch.
func (r *Row) arrive(now sim.Time) {
	pri := workload.High
	if r.dispatchRNG.Float64() < r.lowArrivalProb {
		pri = workload.Low
	}
	req := r.sampler.SampleWithPriority(now, pri)
	r.metrics.Arrived[pri]++
	r.arrivedCtr[pri].Inc()
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{At: now, Kind: obs.KindArrive, Server: -1, Pool: int8(pri)})
	}
	r.dispatch(now, req)
}

// dispatch enqueues the request at the row's front door and admits as much
// queued work as the admission gate allows.
func (r *Row) dispatch(now sim.Time, req workload.Request) {
	if r.serveMode() {
		r.dispatchServe(now, req)
		return
	}
	// Buffering is bounded at one queued request per server (§6.6); a
	// production load balancer sheds or redirects beyond that.
	if len(r.frontQ[req.Priority]) >= len(r.pools[req.Priority]) {
		r.metrics.Dropped[req.Priority]++
		r.droppedCtr[req.Priority].Inc()
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: now, Kind: obs.KindDrop, Server: -1, Pool: int8(req.Priority),
				Reason: "buffer-full",
			})
		}
		return
	}
	q := append(r.frontQ[req.Priority], req)
	r.frontQ[req.Priority] = q
	if len(q) > r.metrics.MaxQueueLen {
		r.metrics.MaxQueueLen = len(q)
	}
	r.tryAdmit(req.Priority, now)
}

// admitLimit returns the pool's current admission gate: the busy-server
// count the fleet balancer would steer this row to. It follows the offered
// load (arrival rate × nominal service time), stretched by the pool's
// current capping slowdown — a capped fleet runs at higher occupancy to
// serve the same traffic — plus one server of slack (the paper's
// one-request-buffer headroom).
func (r *Row) admitLimit(p workload.Priority, now sim.Time) int {
	pool := r.pools[p]
	if len(pool) == 0 {
		return 0
	}
	busyFrac := r.arrivalPlan.RateAt(now) * r.svcEffSec / float64(len(r.nodes))
	slow := r.poolSlowdown(p)
	target := busyFrac * float64(len(pool)) * slow
	// Square-root staffing slack: keeps the queueing delay independent of
	// pool size as oversubscription adds servers.
	slack := 0.6 * math.Sqrt(target)
	if slack < 1.5 {
		slack = 1.5
	}
	limit := int(target + slack)
	if limit > len(pool) {
		limit = len(pool)
	}
	return limit
}

// poolSlowdown returns the pool's mean service-time stretch under the
// currently applied locks (1.0 when uncapped).
func (r *Row) poolSlowdown(p workload.Priority) float64 {
	base := r.svcBase[p]
	if base <= 0 {
		return 1
	}
	var sum float64
	pool := r.pools[p]
	for _, n := range pool {
		sum += r.serviceAtLock(p, n.appliedLock)
	}
	return sum / float64(len(pool)) / base
}

// serviceAtLock returns the cached mean service time for the pool's mix at
// the given applied SM-clock lock.
func (r *Row) serviceAtLock(p workload.Priority, lock float64) float64 {
	if s, ok := r.svcAtLock[p][lock]; ok {
		return s
	}
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	dev.LockClock(lock)
	var wsum, tsum float64
	for _, cl := range r.cfg.Classes {
		w := cl.Share * cl.LowShare
		if p == workload.High {
			w = cl.Share * (1 - cl.LowShare)
		}
		if w <= 0 {
			continue
		}
		pl, err := plan.NewInference(plan.InferenceConfig{
			Model: r.cfg.Model, DType: r.cfg.DType, BatchSize: 1,
			InputTokens:  (cl.PromptMin + cl.PromptMax) / 2,
			OutputTokens: (cl.OutputMin + cl.OutputMax) / 2,
		})
		if err != nil {
			continue
		}
		var dur time.Duration
		for _, ph := range pl.Phases() {
			dur += dev.Run(ph).Duration
		}
		wsum += w
		tsum += w * dur.Seconds()
	}
	s := r.svcBase[p]
	if wsum > 0 {
		s = tsum / wsum
	}
	r.svcAtLock[p][lock] = s
	return s
}

// tryAdmit starts queued requests on idle servers while the gate allows.
func (r *Row) tryAdmit(p workload.Priority, now sim.Time) {
	if r.serveMode() {
		return // replicas pull their own work; there is no central queue
	}
	limit := r.admitLimit(p, now)
	for len(r.frontQ[p]) > 0 && r.busy[p] < limit {
		var idle []*node
		for _, n := range r.pools[p] {
			if n.active == nil && !n.dead {
				idle = append(idle, n)
			}
		}
		if len(idle) == 0 {
			return
		}
		req := r.frontQ[p][0]
		r.frontQ[p] = r.frontQ[p][1:]
		r.start(idle[r.dispatchRNG.Intn(len(idle))], now, req)
	}
}

// start begins serving a request on a node.
func (r *Row) start(n *node, now sim.Time, req workload.Request) {
	p, err := plan.NewInference(plan.InferenceConfig{
		Model:        r.cfg.Model,
		DType:        r.cfg.DType,
		BatchSize:    1,
		InputTokens:  req.Input,
		OutputTokens: req.Output,
	})
	if err != nil {
		panic(err) // sizes come from validated classes
	}
	phases := p.Phases()
	if f := r.inj.SlowFactor(n.idx); f > 1 {
		// Straggler: the node takes f× the work per request (same power
		// profile, stretched), like a host with a failing NVLink or thermal
		// throttling the fleet hasn't drained yet.
		scaled := make([]gpu.Phase, len(phases))
		for i, ph := range phases {
			scaled[i] = ph.Scale(f)
		}
		phases = scaled
	}
	n.active = &activeReq{req: req, remaining: phases, started: now}
	r.busy[req.Priority]++
	r.startPhase(n, now)
}

// startPhase executes the head of the node's remaining phases under the
// node's current device settings.
func (r *Row) startPhase(n *node, now sim.Time) {
	a := n.active
	for len(a.remaining) > 0 {
		exec := n.dev.Run(a.remaining[0])
		if exec.Duration <= 0 {
			a.remaining = a.remaining[1:]
			continue
		}
		a.exec = exec
		a.phaseStart = now
		a.timer = r.eng.AfterCancelable(exec.Duration, func(t sim.Time) {
			r.phaseDone(n, t)
		})
		return
	}
	r.complete(n, now)
}

// phaseDone advances the node past its finished phase.
func (r *Row) phaseDone(n *node, now sim.Time) {
	a := n.active
	a.remaining = a.remaining[1:]
	if len(a.remaining) > 0 {
		r.startPhase(n, now)
		return
	}
	r.complete(n, now)
}

// complete records the request and pulls the next one.
func (r *Row) complete(n *node, now sim.Time) {
	a := n.active
	n.active = nil
	pri := a.req.Priority
	r.metrics.Completed[pri]++
	r.metrics.LatencySec[pri] = append(r.metrics.LatencySec[pri], (now - a.req.Arrival).Seconds())
	r.metrics.BusySec[pri] += (now - a.started).Seconds()
	r.completedCtr[pri].Inc()
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindComplete, Server: int32(n.idx), Pool: int8(pri),
			Value: (now - a.req.Arrival).Seconds(),
		})
	}
	r.busy[pri]--
	r.tryAdmit(pri, now)
}

// replan rebuilds the node's in-flight phase after a clock change.
func (r *Row) replan(n *node, now sim.Time) {
	if n.rep != nil {
		n.rep.Replan(now)
		return
	}
	a := n.active
	if a == nil || len(a.remaining) == 0 {
		return
	}
	a.timer.Stop()
	elapsed := now - a.phaseStart
	frac := 1.0
	if a.exec.Duration > 0 {
		frac = float64(elapsed) / float64(a.exec.Duration)
	}
	if frac >= 1 {
		r.phaseDone(n, now)
		return
	}
	if frac < 0 {
		frac = 0
	}
	a.remaining[0] = a.remaining[0].Scale(1 - frac)
	r.startPhase(n, now)
}

// nodePower returns the node's current server power draw.
func (r *Row) nodePower(n *node, now sim.Time) float64 {
	if n.dead {
		return 0
	}
	var gpuW float64
	switch {
	case n.rep != nil:
		gpuW = n.rep.PowerAt(now)
	case n.active != nil:
		gpuW = n.active.exec.PowerAt(now - n.active.phaseStart)
	default:
		gpuW = n.gpuIdleW
	}
	gpuW *= n.gpuScale
	return n.srv.PowerFromGPUs(gpuW)
}

// instantUtilization returns row power as a fraction of the provisioned
// budget at this instant.
func (r *Row) instantUtilization(now sim.Time) float64 {
	var w float64
	for _, n := range r.nodes {
		w += r.nodePower(n, now)
	}
	return w / r.metrics.Provisioned
}

// brakeLogic engages/releases the row's power brake (§6.2's safety net).
func (r *Row) brakeLogic(util float64) {
	switch {
	case !r.braked && !r.brakePending && util >= r.cfg.BrakeUtil:
		r.brakePending = true
		r.metrics.BrakeEvents++
		r.brakeCtr.Inc()
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: r.eng.Now(), Kind: obs.KindBrakeTrigger, Server: -1,
				Pool: obs.PoolNone, Value: util,
			})
		}
		r.eng.After(r.cfg.BrakeLatency, func(now sim.Time) {
			r.brakePending = false
			r.braked = true
			r.brakeHeld = now + r.cfg.BrakeHold
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{At: now, Kind: obs.KindBrakeEngage, Server: -1, Pool: obs.PoolNone})
			}
			for _, n := range r.nodes {
				n.dev.SetBrake(true)
				r.replan(n, now)
			}
		})
	case r.braked && util < r.cfg.BrakeReleaseUtil && r.eng.Now() >= r.brakeHeld:
		r.braked = false
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: r.eng.Now(), Kind: obs.KindBrakeRelease, Server: -1,
				Pool: obs.PoolNone, Value: util,
			})
		}
		for _, n := range r.nodes {
			n.dev.SetBrake(false)
			r.replan(n, r.eng.Now())
		}
	}
}

// pumpCommands issues pending OOB commands: any node whose desired lock
// differs from the applied one and has no command in flight gets one. The
// command lands after the OOB latency (with ±20% jitter) and fails
// silently with the configured probability, to be re-issued on a later
// tick — the guardrail the paper says production deployment requires.
func (r *Row) pumpCommands(now sim.Time) {
	for _, n := range r.nodes {
		if n.dead || n.cmdInFlight || n.desiredLock == n.appliedLock {
			continue
		}
		// A new desired lock starts a fresh retry sequence.
		if n.desiredLock != n.retryTarget || n.retryCount == 0 {
			n.retryTarget = n.desiredLock
			n.retryCount = 0
			n.retryWait = 0
			n.retryDead = false
		}
		if n.retryDead || now < n.retryWait {
			continue
		}
		if n.retryCount > 0 {
			r.metrics.OOBRetries++
		}
		n.retryCount++
		n.cmdInFlight = true
		r.metrics.LockCommands++
		r.cmdsInFlight++
		r.lockCmdCtr.Inc()
		target := n.desiredLock
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: now, Kind: obs.KindOOBIssue,
				Server: int32(n.idx), Pool: int8(n.pri), MHz: target,
			})
		}
		// A burst window dooms the command at issue time (it still consumes
		// the channel for its full flight, like §3.3's silent failures).
		doomed := r.inj.OOBBurstFailure(now)
		jitter := 0.8 + 0.4*r.oobRNG.Float64()
		delay := r.inj.OOBLatency(time.Duration(float64(r.cfg.OOBLatency) * jitter))
		node := n
		r.eng.After(delay, func(t sim.Time) {
			node.cmdInFlight = false
			r.cmdsInFlight--
			// The baseline failure draw comes first unconditionally so the
			// oob stream's consumption is identical with injection off.
			reason := ""
			switch {
			case r.oobRNG.Float64() < r.cfg.OOBFailureProb:
				reason = "silent-failure"
			case doomed:
				reason = "burst-failure"
			case node.dead:
				reason = "node-dead"
			}
			if reason != "" {
				r.metrics.FailedCommands++
				r.failedCmdCtr.Inc()
				if r.tracer != nil {
					r.tracer.Emit(obs.Event{
						At: t, Kind: obs.KindOOBFail,
						Server: int32(node.idx), Pool: int8(node.pri), MHz: target,
						Reason: reason,
					})
				}
				r.retryAccounting(node, target, t)
				return // silent failure; re-issued on a later tick
			}
			if r.cfg.DropStaleOOB && node.desiredLock != target {
				// The desired lock changed while this command was in flight:
				// applying it would actuate a decision the policy already
				// revoked (possibly *uncapping* a row the policy wants
				// capped). Drop it; the pump re-issues the current target.
				r.metrics.StaleOOBDrops++
				if r.tracer != nil {
					r.tracer.Emit(obs.Event{
						At: t, Kind: obs.KindOOBStale,
						Server: int32(node.idx), Pool: int8(node.pri), MHz: target,
						Value: node.desiredLock, Reason: "superseded",
					})
				}
				return
			}
			node.appliedLock = target
			node.dev.LockClock(target)
			if r.tracer != nil {
				kind := obs.KindCapApply
				if target == 0 {
					kind = obs.KindCapRelease
				}
				r.tracer.Emit(obs.Event{
					At: t, Kind: kind,
					Server: int32(node.idx), Pool: int8(node.pri), MHz: target,
				})
			}
			r.replan(node, t)
			r.tryAdmit(node.pri, t)
		})
	}
}

// retryAccounting applies the bounded-retry policy after a failed command:
// exponential backoff before the next issue and a hard budget after which
// the target is abandoned (the watchdog and brake still backstop safety).
// With both knobs at zero — the default — this is a no-op and failed
// commands re-issue on the next tick, the pre-hardening behaviour.
func (r *Row) retryAccounting(n *node, target float64, t sim.Time) {
	if n.retryTarget != target {
		return // the desired lock moved on; this sequence is obsolete
	}
	if r.cfg.OOBRetryBudget > 0 && n.retryCount >= r.cfg.OOBRetryBudget {
		n.retryDead = true
		r.metrics.OOBRetriesExhausted++
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: t, Kind: obs.KindOOBFail,
				Server: int32(n.idx), Pool: int8(n.pri), MHz: target,
				Reason: "retry-exhausted",
			})
		}
		return
	}
	if r.cfg.OOBRetryBackoff > 0 {
		shift := n.retryCount - 1
		if shift > 6 {
			shift = 6 // cap the doubling at 64× the base backoff
		}
		n.retryWait = t + r.cfg.OOBRetryBackoff<<shift
	}
}
