package cluster_test

import (
	"sort"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// serveConfig returns a small serve-mode row.
func serveConfig() cluster.RowConfig {
	cfg := testConfig()
	cfg.Serve = &serve.Config{}
	return cfg
}

func TestServeConfigAccessors(t *testing.T) {
	cfg := serveConfig()
	eng := sim.New(cfg.Seed)
	row := cluster.MustRow(eng, cfg, &recordingCtrl{})
	sc := row.ServeConfig()
	if sc == nil {
		t.Fatal("ServeConfig() = nil in serve mode")
	}
	// The serving model defaults to the row's model with resolved defaults.
	if sc.Model.Name != cfg.Model.Name || sc.MaxBatchSize != 32 || sc.Router != "least-queue" {
		t.Errorf("resolved serve config = %+v", sc)
	}
	slot := testConfig()
	row2 := cluster.MustRow(sim.New(1), slot, &recordingCtrl{})
	if row2.ServeConfig() != nil {
		t.Error("ServeConfig() non-nil in slot mode")
	}
}

func TestServeConfigValidation(t *testing.T) {
	cfg := serveConfig()
	cfg.Serve.Router = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted an unknown serve router")
	}
	cfg = serveConfig()
	cfg.Serve.DecodeStride = -1
	if _, err := cluster.NewRow(sim.New(1), cfg, &recordingCtrl{}); err == nil {
		t.Error("NewRow accepted a bad serve config")
	}
}

// TestServeRowCalibration runs the same steady-state arrivals through the
// slot backend and the serving backend and requires the row-level
// aggregates to agree: same completion count (both backends are
// work-conserving and unsaturated at 60% busy) and a mean power within a
// few percent. The tails legitimately differ — the serving backend batches
// requests, so its power flips between loaded iterations and idle gaps
// where the slot model spreads each request's power over its own span, and
// queueing latencies are not comparable (batched residency vs exclusive
// service). Only the means are expected to line up.
func TestServeRowCalibration(t *testing.T) {
	slotCfg := testConfig()
	plan := flatPlan(slotCfg, 0.6, 2*time.Hour)
	slot := runRow(t, slotCfg, &recordingCtrl{}, plan)
	srv := runRow(t, serveConfig(), &recordingCtrl{}, plan)

	// The arrival process is backend-independent, but the priority coin
	// shares the dispatch RNG stream with slot-mode server selection, so
	// only the totals are comparable across backends.
	slotArr := slot.Arrived[workload.Low] + slot.Arrived[workload.High]
	srvArr := srv.Arrived[workload.Low] + srv.Arrived[workload.High]
	if slotArr != srvArr {
		t.Fatalf("total arrivals differ (%d vs %d): backends saw different workloads", slotArr, srvArr)
	}
	slotDone := slot.Completed[workload.Low] + slot.Completed[workload.High]
	srvDone := srv.Completed[workload.Low] + srv.Completed[workload.High]
	if srvDone < slotDone*98/100 || srvDone > slotDone*102/100 {
		t.Errorf("completions: slot %d, serve %d (> 2%% apart)", slotDone, srvDone)
	}
	slotMean, srvMean := slot.Util.Mean(), srv.Util.Mean()
	diff := srvMean - slotMean
	if diff < 0 {
		diff = -diff
	}
	t.Logf("mean util: slot %.3f serve %.3f; serve p99 %.3f batches %d",
		slotMean, srvMean, srv.Util.Peak(), srv.Serve.Batches)
	if diff > 0.08 {
		t.Errorf("mean util: slot %.3f, serve %.3f — diverges beyond 0.08", slotMean, srvMean)
	}

	// Serving-only aggregates must be populated and internally consistent.
	if srv.Serve.Batches == 0 || srv.Serve.DecodeTokens == 0 {
		t.Fatalf("serve stats empty: %+v", srv.Serve)
	}
	if srv.Serve.KVReservedTokens != srv.Serve.KVFreedTokens {
		t.Errorf("row-wide KV ledger leaked: reserved %d, freed %d",
			srv.Serve.KVReservedTokens, srv.Serve.KVFreedTokens)
	}
	if len(srv.TTFT) == 0 || len(srv.TBT) == 0 {
		t.Error("serve mode recorded no token latencies")
	}
	if srv.Serve.EnergyJ <= 0 {
		t.Error("serve mode attributed no energy to requests")
	}
	if slot.Serve.Batches != 0 || slot.TTFT != nil {
		t.Error("slot mode leaked serving metrics")
	}
}

// TestServeTraceReconciles extends the observability acceptance test to the
// serving backend: every scheduler aggregate must be re-derivable from the
// event stream.
func TestServeTraceReconciles(t *testing.T) {
	cfg := serveConfig()
	cfg.AddedFraction = 0.30
	m, _, o := runObservedRow(t, cfg, &recordingCtrl{}, 0.9, time.Hour)
	tr := o.Tracer

	if got := tr.CountKind(obs.KindBatchForm); got != m.Serve.Batches {
		t.Errorf("batch.form events = %d, Serve.Batches = %d", got, m.Serve.Batches)
	}
	if got := tr.CountKind(obs.KindPreempt); got != m.Serve.Preemptions {
		t.Errorf("preempt events = %d, Serve.Preemptions = %d", got, m.Serve.Preemptions)
	}
	if got := tr.CountKind(obs.KindKVHighWater); got != m.Serve.KVHighWaterEvents {
		t.Errorf("kv.highwater events = %d, Serve.KVHighWaterEvents = %d", got, m.Serve.KVHighWaterEvents)
	}
	completed := m.Completed[workload.Low] + m.Completed[workload.High]
	if got := tr.CountKind(obs.KindComplete); got != completed {
		t.Errorf("req.complete events = %d, Completed = %d", got, completed)
	}
	dropped := m.Dropped[workload.Low] + m.Dropped[workload.High]
	if got := tr.CountKind(obs.KindDrop); got != dropped {
		t.Errorf("req.drop events = %d, Dropped = %d", got, dropped)
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["serve_batches_total"]; got != int64(m.Serve.Batches) {
		t.Errorf("serve_batches_total = %d, want %d", got, m.Serve.Batches)
	}
	if got := snap.Counters["serve_preemptions_total"]; got != int64(m.Serve.Preemptions) {
		t.Errorf("serve_preemptions_total = %d, want %d", got, m.Serve.Preemptions)
	}
}

// TestServeNodeDeathDropsInFlight kills servers mid-run and checks the
// serving backend accounts for every request: arrivals equal completions
// plus drops, and the KV reservations of killed sequences are released.
func TestServeNodeDeathDropsInFlight(t *testing.T) {
	cfg := serveConfig()
	cfg.Faults = faults.Spec{
		Kills: []faults.Kill{{Servers: 2, Window: faults.Window{Start: 10 * time.Minute, Dur: 20 * time.Minute}}},
	}
	m := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.6, time.Hour))

	dropped := m.Dropped[workload.Low] + m.Dropped[workload.High]
	if dropped == 0 {
		t.Fatal("killing 2 servers for 20 minutes dropped nothing")
	}
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		if m.Arrived[p] != m.Completed[p]+m.Dropped[p] {
			t.Errorf("pool %v: arrived %d != completed %d + dropped %d",
				p, m.Arrived[p], m.Completed[p], m.Dropped[p])
		}
	}
	if m.Serve.KVReservedTokens != m.Serve.KVFreedTokens {
		t.Errorf("KV leaked across node death: reserved %d, freed %d",
			m.Serve.KVReservedTokens, m.Serve.KVFreedTokens)
	}
}

// TestServeDeterminism requires byte-identical serve-mode reruns for every
// router policy, including the power-aware one that reads OOB cap state.
func TestServeDeterminism(t *testing.T) {
	for _, router := range serve.RouterNames() {
		cfg := serveConfig()
		cfg.AddedFraction = 0.30
		cfg.Serve.Router = router
		run := func() *cluster.Metrics {
			return runRow(t, cfg, &recordingCtrl{lockLP: 1100}, flatPlan(cfg, 0.8, 30*time.Minute))
		}
		a, b := run(), run()
		if a.Serve != b.Serve {
			t.Errorf("%s: serve stats differ:\n%+v\n%+v", router, a.Serve, b.Serve)
		}
		for i := range a.Util.Values {
			if a.Util.Values[i] != b.Util.Values[i] {
				t.Fatalf("%s: power series differs at sample %d", router, i)
			}
		}
		for class, xs := range a.TTFT {
			ys := b.TTFT[class]
			if ys == nil || xs.Count() != ys.Count() {
				t.Fatalf("%s: TTFT sample counts differ for %s", router, class)
			}
			for _, p := range []float64{50, 99} {
				if xs.Percentile(p) != ys.Percentile(p) {
					t.Fatalf("%s: TTFT p%.0f differs for %s", router, p, class)
				}
			}
			if a.ClassEnergyJ[class] != b.ClassEnergyJ[class] {
				t.Fatalf("%s: class energy differs for %s", router, class)
			}
		}
	}
}

// TestServeCappingSlowsTokens is the serving-backend version of the
// capping-latency check: locking the low-priority pool's clocks stretches
// that pool's iterations, so low-priority requests take visibly longer
// while the high-priority pool stays comparatively unaffected. (The run is
// unsaturated and drains fully, so completion counts cannot show the
// slowdown — latency does.)
func TestServeCappingSlowsTokens(t *testing.T) {
	cfg := serveConfig()
	base := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.6, time.Hour))
	capped := runRow(t, cfg, &recordingCtrl{lockLP: 960}, flatPlan(cfg, 0.6, time.Hour))

	lpBase := stats.Percentile(base.LatencySec[workload.Low], 50)
	lpCapped := stats.Percentile(capped.LatencySec[workload.Low], 50)
	if lpCapped < lpBase*1.05 {
		t.Errorf("LP p50 latency %.2fs → %.2fs under a 960 MHz lock, expected ≥ 5%% slower",
			lpBase, lpCapped)
	}
	hpBase := stats.Percentile(base.LatencySec[workload.High], 50)
	hpCapped := stats.Percentile(capped.LatencySec[workload.High], 50)
	if hpCapped > hpBase*1.05 {
		t.Errorf("HP p50 latency %.2fs → %.2fs despite an LP-only cap", hpBase, hpCapped)
	}
	t.Logf("p50 latency: LP %.2fs → %.2fs, HP %.2fs → %.2fs", lpBase, lpCapped, hpBase, hpCapped)
}

// drainPlan is flatPlan followed by a zero-rate tail so every replica
// drains before the horizon — the instant at which per-request energy
// attribution must equal the integrated replica energy exactly.
func drainPlan(cfg cluster.RowConfig, busy float64, active, tail time.Duration) trace.RatePlan {
	p := flatPlan(cfg, busy, active+tail)
	for i := int(active / time.Minute); i < len(p.Rates); i++ {
		p.Rates[i] = 0
	}
	return p
}

// TestServeSpanConservation is the row-level acceptance test for energy
// attribution: run the serving backend to drain with span tracing on, under
// no-cap and under an LP clock lock, with the KV budget squeezed so
// preemptions occur, and require (1) the root spans' energies sum to the
// replica-integrated row energy, (2) the per-class energy accounting agrees
// with both, and (3) the report's sketch-derived p99 TTFT is reproducible
// from the span JSONL alone (the polca-analyze contract).
func TestServeSpanConservation(t *testing.T) {
	for _, tc := range []struct {
		name string
		ctrl cluster.Controller
	}{
		{"nocap", &recordingCtrl{}},
		{"capped", &recordingCtrl{lockLP: 1005}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := serveConfig()
			// Squeeze the KV budget so the scenario exercises preemption
			// and recompute attribution, not just the happy path.
			cfg.Serve.GPUMemUtil = 0.62
			o := &obs.Observer{Spans: obs.NewSpanTracer(), Metrics: obs.NewRegistry()}
			eng := sim.New(cfg.Seed)
			eng.SetObserver(o)
			row := cluster.MustRow(eng, cfg, tc.ctrl)
			m := row.Run(drainPlan(cfg, 0.8, 30*time.Minute, 60*time.Minute))

			for _, p := range []workload.Priority{workload.Low, workload.High} {
				if m.Arrived[p] != m.Completed[p]+m.Dropped[p] {
					t.Fatalf("pool %v not drained: %d arrived, %d completed, %d dropped",
						p, m.Arrived[p], m.Completed[p], m.Dropped[p])
				}
			}
			if m.Serve.Preemptions == 0 {
				t.Error("squeezed KV budget produced no preemptions — scenario lost its stress")
			}

			spans := o.Spans.Spans()
			var rootJ, rootCapSec float64
			ttftByClass := map[string][]float64{}
			roots := 0
			for _, sp := range spans {
				if sp.Kind != obs.SpanRequest {
					continue
				}
				roots++
				rootJ += sp.EnergyJ
				rootCapSec += sp.CapSec
				if sp.TTFTSec >= 0 {
					ttftByClass[sp.Class] = append(ttftByClass[sp.Class], sp.TTFTSec)
				}
			}
			if roots == 0 {
				t.Fatal("no request spans recorded")
			}
			checkClose := func(what string, got, want float64) {
				t.Helper()
				den := want
				if den == 0 {
					den = 1
				}
				if d := (got - want) / den; d > 1e-9 || d < -1e-9 {
					t.Errorf("%s: %.3f vs %.3f (rel %.2e)", what, got, want, d)
				}
			}
			checkClose("root spans vs integrated energy", rootJ, m.Serve.EnergyJ)
			checkClose("root spans vs cap seconds", rootCapSec, m.Serve.CapExtraSec)
			var classJ float64
			for _, j := range m.ClassEnergyJ {
				classJ += j
			}
			checkClose("per-class energy vs integrated", classJ, m.Serve.EnergyJ)
			if tc.name == "nocap" && m.Serve.CapExtraSec != 0 {
				t.Errorf("uncapped row reports cap slowdown %g s", m.Serve.CapExtraSec)
			}
			if tc.name == "capped" && m.Serve.CapExtraSec <= 0 {
				t.Error("LP clock lock produced no cap slowdown")
			}

			// The report's p99 TTFT must be recomputable from spans alone:
			// the digest estimate sits within one sample rank of the exact
			// percentile computed over the root spans' TTFTs (the sketch's
			// guarantee — value-space error can exceed 1% in a sparse tail).
			for class, d := range m.TTFT {
				xs := ttftByClass[class]
				if int64(len(xs)) != d.Count() {
					t.Errorf("%s: %d span TTFTs vs digest count %d", class, len(xs), d.Count())
					continue
				}
				sort.Float64s(xs)
				got := d.Percentile(99)
				wantRank := 0.99 * float64(len(xs)-1)
				gotRank := float64(sort.SearchFloat64s(xs, got))
				if gotRank < wantRank-1 || gotRank > wantRank+1 {
					t.Errorf("%s: digest p99 TTFT %.4f lands at rank %.0f of %d, exact rank %.1f (> 1 rank off)",
						class, got, gotRank, len(xs), wantRank)
				}
			}
		})
	}
}

// TestServeCoalescingEquivalence runs the same serve-mode scenarios with
// decode-span coalescing on (the default) and forced off, and requires
// every row-level aggregate to be byte-identical. This is the cluster-scale
// counterpart of the replica equivalence property: cap replans from the
// controller, KV-pressure preemption, node death mid-decode, and a combined
// chaos spec must all leave the coalesced trajectory indistinguishable from
// the per-stride one.
func TestServeCoalescingEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		prep func(cfg *cluster.RowConfig) cluster.Controller
	}{
		{
			name: "cap-replans",
			prep: func(cfg *cluster.RowConfig) cluster.Controller {
				cfg.AddedFraction = 0.30
				return &recordingCtrl{lockLP: 1100}
			},
		},
		{
			name: "kv-pressure",
			prep: func(cfg *cluster.RowConfig) cluster.Controller {
				cfg.Serve.GPUMemUtil = 0.62
				return &recordingCtrl{}
			},
		},
		{
			name: "node-death",
			prep: func(cfg *cluster.RowConfig) cluster.Controller {
				cfg.Faults = faults.Spec{
					Kills: []faults.Kill{{Servers: 2, Window: faults.Window{Start: 10 * time.Minute, Dur: 20 * time.Minute}}},
				}
				return &recordingCtrl{}
			},
		},
		{
			name: "combined-chaos",
			prep: func(cfg *cluster.RowConfig) cluster.Controller {
				cfg.AddedFraction = 0.30
				cfg.Faults = mustSpec(t, "crash=5m+30,kill=1@9m+1m,slow=1:1.5")
				return &recordingCtrl{lockLP: 1100}
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(noCoalesce bool) *cluster.Metrics {
				cfg := serveConfig()
				ctrl := sc.prep(&cfg)
				cfg.Serve.NoCoalesce = noCoalesce
				return runRow(t, cfg, ctrl, flatPlan(cfg, 0.8, 40*time.Minute))
			}
			a, b := run(false), run(true)
			if a.Serve != b.Serve {
				t.Errorf("serve stats differ:\ncoalesced:  %+v\nper-stride: %+v", a.Serve, b.Serve)
			}
			if len(a.Util.Values) != len(b.Util.Values) {
				t.Fatalf("power series lengths differ: %d vs %d", len(a.Util.Values), len(b.Util.Values))
			}
			for i := range a.Util.Values {
				if a.Util.Values[i] != b.Util.Values[i] {
					t.Fatalf("power series differs at sample %d: %v vs %v",
						i, a.Util.Values[i], b.Util.Values[i])
				}
			}
			for _, pri := range []workload.Priority{workload.Low, workload.High} {
				if a.Completed[pri] != b.Completed[pri] || a.Dropped[pri] != b.Dropped[pri] {
					t.Errorf("%v: completed %d/%d dropped %d/%d differ", pri,
						a.Completed[pri], b.Completed[pri], a.Dropped[pri], b.Dropped[pri])
				}
				xs, ys := a.LatencySec[pri], b.LatencySec[pri]
				if len(xs) != len(ys) {
					t.Fatalf("%v: latency counts differ: %d vs %d", pri, len(xs), len(ys))
				}
				for i := range xs {
					if xs[i] != ys[i] {
						t.Fatalf("%v: latency[%d] differs: %v vs %v", pri, i, xs[i], ys[i])
					}
				}
			}
			for class, xs := range a.TTFT {
				ys := b.TTFT[class]
				if ys == nil || xs.Count() != ys.Count() {
					t.Fatalf("TTFT sample counts differ for %s", class)
				}
				for _, p := range []float64{50, 99} {
					if xs.Percentile(p) != ys.Percentile(p) {
						t.Fatalf("TTFT p%.0f differs for %s", p, class)
					}
					if a.TBT[class].Percentile(p) != b.TBT[class].Percentile(p) {
						t.Fatalf("TBT p%.0f differs for %s", p, class)
					}
				}
				if a.ClassEnergyJ[class] != b.ClassEnergyJ[class] {
					t.Fatalf("class energy differs for %s", class)
				}
			}
		})
	}
}
