package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/workload"
)

func mustSpec(t *testing.T, text string) faults.Spec {
	t.Helper()
	s, err := faults.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// flipLockCtrl asserts one lock until flipAt, then another: the simplest
// way to put a superseded command in flight deterministically.
type flipLockCtrl struct {
	first, second float64
	flipAt        time.Duration
}

func (c *flipLockCtrl) Name() string { return "fliplock" }
func (c *flipLockCtrl) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	v := c.first
	if time.Duration(now) >= c.flipAt {
		v = c.second
	}
	act.SetPoolLock(workload.Low, v)
	act.SetPoolLock(workload.High, v)
}

// TestStaleOOBCommands is the regression test for superseded in-flight
// commands: the first command (1500 MHz) is still in the 40 s OOB pipe
// when the controller changes its mind (1110 MHz). With DropStaleOOB the
// landing is discarded and traced; without it the outdated lock applies —
// the historical behaviour the paper figures are pinned to.
func TestStaleOOBCommands(t *testing.T) {
	run := func(drop bool) (*cluster.Metrics, *obs.Tracer) {
		cfg := testConfig()
		cfg.OOBFailureProb = 0 // every landing is deterministic
		cfg.DropStaleOOB = drop
		ctrl := &flipLockCtrl{first: 1500, second: 1110, flipAt: 10 * time.Second}
		m, _, o := runObservedRow(t, cfg, ctrl, 0.3, 2*time.Minute)
		return m, o.Tracer
	}

	m, tr := run(true)
	servers := testConfig().Servers()
	if m.StaleOOBDrops != servers {
		t.Errorf("StaleOOBDrops = %d, want one per server (%d)", m.StaleOOBDrops, servers)
	}
	if got := tr.CountKind(obs.KindOOBStale); got != m.StaleOOBDrops {
		t.Errorf("oob.stale events = %d, StaleOOBDrops = %d", got, m.StaleOOBDrops)
	}
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindCapApply && ev.MHz == 1500 {
			t.Fatalf("superseded 1500 MHz lock applied at %v despite DropStaleOOB", ev.At)
		}
		if ev.Kind == obs.KindOOBStale && (ev.MHz != 1500 || ev.Value != 1110) {
			t.Errorf("stale event should carry old target 1500 and current 1110, got %v/%v", ev.MHz, ev.Value)
		}
	}

	m, tr = run(false)
	if m.StaleOOBDrops != 0 {
		t.Errorf("legacy mode recorded %d stale drops, want 0", m.StaleOOBDrops)
	}
	applied1500 := 0
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindCapApply && ev.MHz == 1500 {
			applied1500++
		}
	}
	if applied1500 != servers {
		t.Errorf("legacy mode applied the outdated lock on %d servers, want %d", applied1500, servers)
	}
}

// TestWatchdogEngagesWithinK: the deadman self-caps on exactly the K-th
// silent epoch after a controller crash, and releases on restart.
func TestWatchdogEngagesWithinK(t *testing.T) {
	const k = 5
	cfg := testConfig()
	cfg.WatchdogEpochs = k
	cfg.Faults = mustSpec(t, "crash=1m+30")
	m, _, o := runObservedRow(t, cfg, polca.New(polca.DefaultConfig()), 0.5, 5*time.Minute)
	if m.WatchdogEngagements != 1 {
		t.Fatalf("WatchdogEngagements = %d, want 1", m.WatchdogEngagements)
	}
	tr := o.Tracer
	var crashAt, engageAt, restartAt, releaseAt time.Duration = -1, -1, -1, -1
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.KindCtrlCrash:
			if crashAt < 0 {
				crashAt = time.Duration(ev.At)
			}
		case obs.KindWatchdogEngage:
			engageAt = time.Duration(ev.At)
		case obs.KindCtrlRestart:
			restartAt = time.Duration(ev.At)
		case obs.KindWatchdogRelease:
			releaseAt = time.Duration(ev.At)
		}
	}
	if crashAt < 0 || engageAt < 0 || restartAt < 0 || releaseAt < 0 {
		t.Fatalf("missing lifecycle events: crash %v engage %v restart %v release %v",
			crashAt, engageAt, restartAt, releaseAt)
	}
	// The crash tick itself is silent epoch 1, so engagement lands K-1
	// intervals later.
	if want := crashAt + (k-1)*cfg.TelemetryInterval; engageAt != want {
		t.Errorf("watchdog engaged at %v, want %v (within %d epochs of silence)", engageAt, want, k)
	}
	if releaseAt != restartAt {
		t.Errorf("watchdog released at %v, want on restart contact at %v", releaseAt, restartAt)
	}
	// While engaged, the row's desired locks are the conservative caps.
	if m.Faults.CtrlCrashTicks == 0 {
		t.Error("injector should report crash ticks")
	}
}

// hardenedConfig is the full degradation stack on a small hot row with a
// reachable brake threshold.
func hardenedConfig(t *testing.T, spec string) cluster.RowConfig {
	t.Helper()
	cfg := testConfig()
	cfg.AddedFraction = 0.30
	cfg.BrakeUtil = 0.90
	cfg.BrakeReleaseUtil = 0.80
	cfg.Faults = mustSpec(t, spec)
	cfg.WatchdogEpochs = 5
	cfg.OOBRetryBudget = 8
	cfg.OOBRetryBackoff = 4 * time.Second
	cfg.DropStaleOOB = true
	return cfg
}

// TestSafetyInvariantUnderFaults is the acceptance-criteria anchor: under
// every injected scenario, the row's physical power may exceed the breaker
// threshold only for one contiguous excursion bounded by the brake engage
// latency plus its hold — the brake sees ground truth below every faultable
// sensor, so no fault class can defeat it.
func TestSafetyInvariantUnderFaults(t *testing.T) {
	scenarios := map[string]string{
		"blackout": "tblackout=2m+2m",
		"crash":    "crash=2m+60",
		"oobburst": "oobburst=2m+3m,ooblat=2",
		"combined": "tdrop=0.1,tspike=0.05:0.5,tstuck=2m+1m,tblackout=4m+30s," +
			"crash=5m+30,miss=0.05,oobburst=7m+1m,ooblat=1.5,kill=1@9m+1m,slow=1:1.5",
	}
	policies := map[string]func() cluster.Controller{
		"nocap": func() cluster.Controller { return polca.NoCap{} },
		"polca-hardened": func() cluster.Controller {
			return polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
		},
	}
	for sname, spec := range scenarios {
		for pname, mk := range policies {
			t.Run(sname+"/"+pname, func(t *testing.T) {
				cfg := hardenedConfig(t, spec)
				m := runRow(t, cfg, mk(), flatPlan(cfg, 0.98, 12*time.Minute))
				// Bound: engage latency + hold, plus two telemetry intervals of
				// measurement slack (the breach sample and the post-engage
				// settling sample).
				bound := cfg.BrakeLatency + cfg.BrakeHold + 2*cfg.TelemetryInterval
				if worst := m.Util.LongestRunAbove(cfg.BrakeUtil); worst > bound {
					t.Errorf("power above breaker limit for %v contiguous, bound %v (brakes %d)",
						worst, bound, m.BrakeEvents)
				}
				// The invariant must not hold vacuously: the uncontrolled
				// policy at this load genuinely breaches, so the brake — the
				// only thing bounding it — must have fired.
				if pname == "nocap" && m.BrakeEvents == 0 {
					t.Error("nocap run never braked; the scenario is not stressing the breaker")
				}
			})
		}
	}
}

// TestFaultInjectionDeterministic: same seed + same spec ⇒ the same run,
// event for event.
func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() (*cluster.Metrics, []obs.Event) {
		cfg := hardenedConfig(t, "tdrop=0.1,tspike=0.05:0.5,crash=2m+30,oobburst=4m+1m,kill=1@6m+1m,slow=1:1.5")
		ctrl := polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
		m, _, o := runObservedRow(t, cfg, ctrl, 0.9, 8*time.Minute)
		return m, o.Tracer.Events()
	}
	m1, ev1 := run()
	m2, ev2 := run()
	if !reflect.DeepEqual(m1.Util.Values, m2.Util.Values) {
		t.Error("utilization series differ between identical runs")
	}
	if m1.Faults != m2.Faults {
		t.Errorf("injected counts differ: %+v vs %+v", m1.Faults, m2.Faults)
	}
	if m1.StaleOOBDrops != m2.StaleOOBDrops || m1.OOBRetries != m2.OOBRetries ||
		m1.WatchdogEngagements != m2.WatchdogEngagements || m1.NodeDeaths != m2.NodeDeaths {
		t.Error("degradation counters differ between identical runs")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event streams differ in length: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
}

// TestQuiescentHardeningDoesNotPerturb: arming the watchdog and the retry
// budget (without backoff) on a fault-free run must not change a single
// sample — the zero-perturbation guarantee that keeps the paper figures
// byte-identical.
func TestQuiescentHardeningDoesNotPerturb(t *testing.T) {
	base := testConfig()
	base.AddedFraction = 0.30
	hard := base
	hard.WatchdogEpochs = 50
	hard.OOBRetryBudget = 1 << 20
	plan := flatPlan(base, 0.9, 10*time.Minute)
	m1 := runRow(t, base, polca.New(polca.DefaultConfig()), plan)
	m2 := runRow(t, hard, polca.New(polca.DefaultConfig()), plan)
	if !reflect.DeepEqual(m1.Util.Values, m2.Util.Values) {
		t.Error("quiescent hardening changed the utilization series")
	}
	if m1.LockCommands != m2.LockCommands || m1.FailedCommands != m2.FailedCommands ||
		m1.BrakeEvents != m2.BrakeEvents {
		t.Errorf("quiescent hardening changed OOB/brake behaviour: %d/%d/%d vs %d/%d/%d",
			m1.LockCommands, m1.FailedCommands, m1.BrakeEvents,
			m2.LockCommands, m2.FailedCommands, m2.BrakeEvents)
	}
	if m2.WatchdogEngagements != 0 || m2.OOBRetriesExhausted != 0 || m2.StaleOOBDrops != 0 {
		t.Error("quiescent run should never trip a degradation path")
	}
}
