package cluster_test

import (
	"math/rand"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/plan"
)

func TestTrainingConfigValidation(t *testing.T) {
	if err := cluster.ProductionTraining().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cluster.ProductionTraining()
	bad.ProvisionedPerServerWatts = 0
	if bad.Validate() == nil {
		t.Error("zero budget should fail")
	}
	bad = cluster.ProductionTraining()
	bad.Jobs = nil
	if bad.Validate() == nil {
		t.Error("no jobs should fail")
	}
	bad = cluster.ProductionTraining()
	bad.Jobs[0].Servers = 0
	if bad.Validate() == nil {
		t.Error("empty job should fail")
	}
	bad = cluster.ProductionTraining()
	bad.Jobs[0].IterJitter = 0.9
	if bad.Validate() == nil {
		t.Error("huge jitter should fail")
	}
	bad = cluster.ProductionTraining()
	bad.TelemetryInterval = 0
	if bad.Validate() == nil {
		t.Error("no telemetry interval should fail")
	}
}

func TestTrainingRowArithmetic(t *testing.T) {
	cfg := cluster.ProductionTraining()
	if cfg.Servers() != 40 {
		t.Errorf("servers = %d, want 40", cfg.Servers())
	}
	if cfg.ProvisionedWatts() != float64(cfg.Servers())*cfg.ProvisionedPerServerWatts {
		t.Error("provisioned watts arithmetic wrong")
	}
}

func TestTrainingClusterTable4(t *testing.T) {
	util, err := cluster.SimulateTraining(cluster.ProductionTraining(), time.Hour, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s := cluster.SummarizeUtilization("training", util)
	// Table 4 training column: peak ~97%, coordinated swings up to 37.5% of
	// provisioned power within 2 s.
	if s.PeakUtilization < 0.93 || s.PeakUtilization > 1.0 {
		t.Errorf("training peak utilization = %.3f, want ~0.97", s.PeakUtilization)
	}
	if s.MaxSpike2s < 0.25 || s.MaxSpike2s > 0.55 {
		t.Errorf("training 2s spike = %.3f, want ~0.375", s.MaxSpike2s)
	}
	if s.MeanUtilization < 0.7 {
		t.Errorf("training mean utilization = %.3f, want high", s.MeanUtilization)
	}
	if s.Name != "training" {
		t.Error("name lost")
	}
}

func TestTrainingDeterminism(t *testing.T) {
	cfg := cluster.ProductionTraining()
	a, err := cluster.SimulateTraining(cfg, 10*time.Minute, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.SimulateTraining(cfg, 10*time.Minute, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("training simulation not deterministic")
		}
	}
}

func TestTrainingCappingReducesSwing(t *testing.T) {
	// Insight 3: a power cap clips training peaks (reducing swing
	// magnitude), a frequency lock lowers the whole curve.
	base := cluster.ProductionTraining()
	capped := cluster.ProductionTraining()
	capped.PowerCapWatts = 325
	locked := cluster.ProductionTraining()
	locked.LockClockMHz = 1100

	ub, err := cluster.SimulateTraining(base, 20*time.Minute, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	uc, err := cluster.SimulateTraining(capped, 20*time.Minute, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ul, err := cluster.SimulateTraining(locked, 20*time.Minute, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	sb := cluster.SummarizeUtilization("base", ub)
	sc := cluster.SummarizeUtilization("capped", uc)
	sl := cluster.SummarizeUtilization("locked", ul)
	if sc.PeakUtilization >= sb.PeakUtilization {
		t.Errorf("capping did not reduce peak: %.3f vs %.3f", sc.PeakUtilization, sb.PeakUtilization)
	}
	if sc.MaxSpike2s >= sb.MaxSpike2s {
		t.Errorf("capping did not reduce swing: %.3f vs %.3f", sc.MaxSpike2s, sb.MaxSpike2s)
	}
	if sl.PeakUtilization >= sb.PeakUtilization {
		t.Errorf("locking did not reduce peak: %.3f vs %.3f", sl.PeakUtilization, sb.PeakUtilization)
	}
	if sl.MeanUtilization >= sb.MeanUtilization {
		t.Error("locking should lower the whole curve")
	}
}

func TestTrainingVsInferenceHeadroom(t *testing.T) {
	// Insight 9 / Table 4: inference offers far more headroom (~21%) than
	// training (~3%).
	tr, err := cluster.SimulateTraining(cluster.ProductionTraining(), time.Hour, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	st := cluster.SummarizeUtilization("training", tr)
	trainHeadroom := 1 - st.PeakUtilization
	if trainHeadroom > 0.07 {
		t.Errorf("training headroom = %.3f, want tiny (~0.03)", trainHeadroom)
	}
	// Inference headroom measured in the row tests: peak ~0.77 → ~0.23.
	// Here we only assert the training side; the cross-cluster comparison
	// lives in the experiments package.
}

func TestTrainingBadProfileRejected(t *testing.T) {
	cfg := cluster.ProductionTraining()
	cfg.Jobs[0].Profile = plan.TrainingConfig{}
	if _, err := cluster.SimulateTraining(cfg, time.Minute, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for invalid training profile")
	}
}
