package cluster_test

import (
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/workload"
)

// runObservedRow runs a row with the full observability stack attached —
// tracer, metrics registry, TSDB, and the default alert ruleset (the
// -tsdb -rules flag combination) — and returns both the run metrics and
// the row (for in-flight inspection). Attaching everything here means the
// zero-perturbation test below covers the whole pipeline.
func runObservedRow(t *testing.T, cfg cluster.RowConfig, ctrl cluster.Controller,
	busy float64, horizon time.Duration) (*cluster.Metrics, *cluster.Row, *obs.Observer) {
	t.Helper()
	o := &obs.Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
	set, err := obs.ParseRules(obs.DefaultRules)
	if err != nil {
		t.Fatal(err)
	}
	o.DB = obs.NewTSDB(obs.TSDBConfig{Step: cfg.TelemetryInterval})
	o.Rules = obs.NewRules(o.DB, set, o.Tracer)
	eng := sim.New(cfg.Seed)
	eng.SetObserver(o)
	row := cluster.MustRow(eng, cfg, ctrl)
	m := row.Run(flatPlan(cfg, busy, horizon))
	return m, row, o
}

// TestTraceReconcilesWithMetrics is the acceptance-criteria anchor: every
// aggregate the run reports must be re-derivable from the event stream.
func TestTraceReconcilesWithMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.AddedFraction = 0.30 // oversubscribed so capping actually happens
	m, row, o := runObservedRow(t, cfg, polca.New(polca.DefaultConfig()), 0.95, 2*time.Hour)
	tr := o.Tracer

	if tr.CountKind(obs.KindOOBIssue) == 0 {
		t.Fatal("expected capping traffic in an oversubscribed hot run")
	}
	// OOB pipeline: issues == LockCommands, fails == FailedCommands, and
	// every issue either landed (apply/release), failed, was dropped as
	// stale (superseded while in flight), or is still in flight.
	if got := tr.CountKind(obs.KindOOBIssue); got != m.LockCommands {
		t.Errorf("oob.issue events = %d, LockCommands = %d", got, m.LockCommands)
	}
	if got := tr.CountKind(obs.KindOOBFail); got != m.FailedCommands {
		t.Errorf("oob.fail events = %d, FailedCommands = %d", got, m.FailedCommands)
	}
	if got := tr.CountKind(obs.KindOOBStale); got != m.StaleOOBDrops {
		t.Errorf("oob.stale events = %d, StaleOOBDrops = %d", got, m.StaleOOBDrops)
	}
	landed := tr.CountKind(obs.KindCapApply) + tr.CountKind(obs.KindCapRelease)
	if got := landed + m.FailedCommands + m.StaleOOBDrops + row.InFlightCommands(); got != m.LockCommands {
		t.Errorf("applies+releases+fails+stale+inflight = %d, want %d issues", got, m.LockCommands)
	}
	// Request lifecycle per pool.
	arrived, completed, dropped := 0, 0, 0
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		arrived += m.Arrived[p]
		completed += m.Completed[p]
		dropped += m.Dropped[p]
	}
	if got := tr.CountKind(obs.KindArrive); got != arrived {
		t.Errorf("req.arrive events = %d, Arrived = %d", got, arrived)
	}
	if got := tr.CountKind(obs.KindComplete); got != completed {
		t.Errorf("req.complete events = %d, Completed = %d", got, completed)
	}
	if got := tr.CountKind(obs.KindDrop); got != dropped {
		t.Errorf("req.drop events = %d, Dropped = %d", got, dropped)
	}
	// Brake engagements.
	if got := tr.CountKind(obs.KindBrakeTrigger); got != m.BrakeEvents {
		t.Errorf("brake.trigger events = %d, BrakeEvents = %d", got, m.BrakeEvents)
	}
	// The metrics registry must agree with the same aggregates.
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["row_oob_commands_total"]; got != int64(m.LockCommands) {
		t.Errorf("row_oob_commands_total = %d, want %d", got, m.LockCommands)
	}
	ctrArrived := snap.Counters[`row_requests_arrived_total{priority="low"}`] +
		snap.Counters[`row_requests_arrived_total{priority="high"}`]
	if ctrArrived != int64(arrived) {
		t.Errorf("arrived counters = %d, want %d", ctrArrived, arrived)
	}
	if snap.Counters["sim_events_dispatched_total"] == 0 {
		t.Error("engine should count dispatched events")
	}
	hist, ok := snap.Histograms["row_util_seconds"]
	if !ok {
		t.Fatal("row_util_seconds histogram missing")
	}
	wantSec := float64(len(m.Util.Values)) * cfg.TelemetryInterval.Seconds()
	if hist.Total != wantSec {
		t.Errorf("util histogram total = %v s, want %v s", hist.Total, wantSec)
	}
	// Events must be timestamp-ordered (the engine dispatches in order, and
	// emission happens inside handlers).
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("event %d out of order: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

// TestObservedRunMatchesUnobserved locks the perturbation-free contract at
// the row level: attaching a tracer and registry must not change a single
// simulated aggregate.
func TestObservedRunMatchesUnobserved(t *testing.T) {
	cfg := testConfig()
	cfg.AddedFraction = 0.30
	plain := runRow(t, cfg, polca.New(polca.DefaultConfig()), flatPlan(cfg, 0.95, time.Hour))
	observed, _, _ := runObservedRow(t, cfg, polca.New(polca.DefaultConfig()), 0.95, time.Hour)

	if plain.LockCommands != observed.LockCommands ||
		plain.FailedCommands != observed.FailedCommands ||
		plain.BrakeEvents != observed.BrakeEvents ||
		plain.MaxQueueLen != observed.MaxQueueLen {
		t.Fatalf("control aggregates diverged: %+v vs %+v", plain, observed)
	}
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		if plain.Arrived[p] != observed.Arrived[p] ||
			plain.Completed[p] != observed.Completed[p] ||
			plain.Dropped[p] != observed.Dropped[p] {
			t.Fatalf("request aggregates diverged for %v", p)
		}
		if len(plain.LatencySec[p]) != len(observed.LatencySec[p]) {
			t.Fatalf("latency sample counts diverged for %v", p)
		}
		for i := range plain.LatencySec[p] {
			if plain.LatencySec[p][i] != observed.LatencySec[p][i] {
				t.Fatalf("latency sample %d diverged for %v", i, p)
			}
		}
	}
	if len(plain.Util.Values) != len(observed.Util.Values) {
		t.Fatal("utilization series lengths diverged")
	}
	for i := range plain.Util.Values {
		if plain.Util.Values[i] != observed.Util.Values[i] {
			t.Fatalf("utilization sample %d diverged", i)
		}
	}
}
