package cluster_test

import (
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// recordingCtrl captures telemetry and optionally requests locks.
type recordingCtrl struct {
	utils   []float64
	lockLP  float64
	lockHP  float64
	applyAt sim.Time
}

func (c *recordingCtrl) Name() string { return "recording" }

func (c *recordingCtrl) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	c.utils = append(c.utils, util)
	if now >= c.applyAt {
		act.SetPoolLock(workload.Low, c.lockLP)
		act.SetPoolLock(workload.High, c.lockHP)
	}
}

// testConfig returns a small fast row.
func testConfig() cluster.RowConfig {
	cfg := cluster.Production()
	cfg.BaseServers = 8
	return cfg
}

// flatPlan returns a constant arrival plan producing roughly the given busy
// fraction on the config's row.
func flatPlan(cfg cluster.RowConfig, busy float64, horizon time.Duration) trace.RatePlan {
	shape := cfg.Shape()
	rate := busy * float64(cfg.Servers()) / shape.MeanServiceSec
	n := int(horizon / time.Minute)
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = rate
	}
	return trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32}
}

func runRow(t *testing.T, cfg cluster.RowConfig, ctrl cluster.Controller, plan trace.RatePlan) *cluster.Metrics {
	t.Helper()
	eng := sim.New(cfg.Seed)
	row := cluster.MustRow(eng, cfg, ctrl)
	return row.Run(plan)
}

func TestConfigValidation(t *testing.T) {
	if err := cluster.Production().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*cluster.RowConfig){
		func(c *cluster.RowConfig) { c.BaseServers = 0 },
		func(c *cluster.RowConfig) { c.AddedFraction = -0.1 },
		func(c *cluster.RowConfig) { c.AddedFraction = 1.5 },
		func(c *cluster.RowConfig) { c.LowPriorityFraction = 2 },
		func(c *cluster.RowConfig) { c.ProvisionedPerServerWatts = 0 },
		func(c *cluster.RowConfig) { c.Model.Params = 0 },
		func(c *cluster.RowConfig) { c.TelemetryInterval = 0 },
		func(c *cluster.RowConfig) { c.OOBFailureProb = 1 },
		func(c *cluster.RowConfig) { c.BrakeReleaseUtil = 2 },
		func(c *cluster.RowConfig) { c.PowerIntensity = 0 },
		func(c *cluster.RowConfig) { c.BrakeHold = -time.Second },
		func(c *cluster.RowConfig) { c.Classes = nil },
	}
	for i, mutate := range mutations {
		cfg := cluster.Production()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestOversubscriptionArithmetic(t *testing.T) {
	cfg := cluster.Production()
	if cfg.Servers() != 40 {
		t.Errorf("servers = %d, want 40 (Table 2)", cfg.Servers())
	}
	base := cfg.ProvisionedWatts()
	cfg.AddedFraction = 0.30
	if cfg.Servers() != 52 {
		t.Errorf("servers at +30%% = %d, want 52", cfg.Servers())
	}
	if cfg.ProvisionedWatts() != base {
		t.Error("oversubscription must not grow the power budget")
	}
}

func TestMeanServiceTimes(t *testing.T) {
	cfg := cluster.Production()
	lp := cfg.MeanServiceSeconds(workload.Low)
	hp := cfg.MeanServiceSeconds(workload.High)
	if lp <= 0 || hp <= 0 {
		t.Fatalf("non-positive service times %v/%v", lp, hp)
	}
	// Search and Chat generate far more output tokens than Summarize.
	if hp < 1.4*lp {
		t.Errorf("high-priority service %v should be much longer than low %v", hp, lp)
	}
	if lp < 5 || lp > 60 || hp < 15 || hp > 120 {
		t.Errorf("service times out of BLOOM range: %v / %v", lp, hp)
	}
}

func TestShape(t *testing.T) {
	cfg := cluster.Production()
	shape := cfg.Shape()
	if err := shape.Validate(); err != nil {
		t.Fatal(err)
	}
	if shape.Servers != 40 {
		t.Errorf("shape servers = %d", shape.Servers)
	}
	if shape.BusyServerWatts < 3000 || shape.BusyServerWatts > 4600 {
		t.Errorf("busy server watts = %v, want ~3.9 kW", shape.BusyServerWatts)
	}
	if shape.IdleServerWatts < 1000 || shape.IdleServerWatts > 2200 {
		t.Errorf("idle server watts = %v", shape.IdleServerWatts)
	}
	// Intensity raises busy power.
	cfg.PowerIntensity = 1.05
	if cfg.BusyServerWatts() <= shape.BusyServerWatts {
		t.Error("power intensity should raise busy watts")
	}
}

func TestSteadyStateUtilization(t *testing.T) {
	cfg := testConfig()
	ctrl := &recordingCtrl{}
	met := runRow(t, cfg, ctrl, flatPlan(cfg, 0.6, time.Hour))
	if met.Util.Len() < 1000 {
		t.Fatalf("too few telemetry samples: %d", met.Util.Len())
	}
	// Forward model: util should track UtilFromBusy(0.6) within a few %.
	want := cfg.Shape().UtilFromBusy(0.6)
	got := met.Util.Mean()
	if got < want-0.06 || got > want+0.06 {
		t.Errorf("mean util = %.3f, want ~%.3f", got, want)
	}
	if met.BrakeEvents != 0 {
		t.Errorf("brakes = %d, want 0 at 60%% busy", met.BrakeEvents)
	}
	if met.Completed[workload.Low] == 0 || met.Completed[workload.High] == 0 {
		t.Error("no completions")
	}
	// Latency contains at least the service time.
	if p50 := stats.Percentile(met.LatencySec[workload.Low], 50); p50 < 5 {
		t.Errorf("LP p50 latency = %.1f s, implausibly low", p50)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	a := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.5, 20*time.Minute))
	b := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.5, 20*time.Minute))
	if a.Completed[workload.Low] != b.Completed[workload.Low] ||
		a.Completed[workload.High] != b.Completed[workload.High] {
		t.Fatal("completions differ across identical runs")
	}
	for i := range a.Util.Values {
		if a.Util.Values[i] != b.Util.Values[i] {
			t.Fatal("power series differ across identical runs")
		}
	}
}

func TestOOBPipelineLatency(t *testing.T) {
	cfg := testConfig()
	cfg.OOBFailureProb = 0 // deterministic application
	ctrl := &recordingCtrl{lockLP: 1110, applyAt: 0}
	eng := sim.New(1)
	row := cluster.MustRow(eng, cfg, ctrl)

	// Run a short plan, then verify locks were applied (end state) and
	// that commands were counted.
	met := row.Run(flatPlan(cfg, 0.5, 5*time.Minute))
	locks := row.PoolAppliedLocks(workload.Low)
	for _, l := range locks {
		if l != 1110 {
			t.Fatalf("low-priority lock = %v, want 1110 after OOB application", l)
		}
	}
	for _, l := range row.PoolAppliedLocks(workload.High) {
		if l != 0 {
			t.Fatalf("high-priority lock = %v, want 0", l)
		}
	}
	if met.LockCommands < row.PoolSize(workload.Low) {
		t.Errorf("lock commands = %d, want at least one per LP server", met.LockCommands)
	}
	if met.FailedCommands != 0 {
		t.Errorf("failed commands = %d with zero failure probability", met.FailedCommands)
	}
}

func TestOOBFailuresRetried(t *testing.T) {
	cfg := testConfig()
	cfg.OOBFailureProb = 0.5 // very lossy
	ctrl := &recordingCtrl{lockLP: 1110, applyAt: 0}
	eng := sim.New(3)
	row := cluster.MustRow(eng, cfg, ctrl)
	met := row.Run(flatPlan(cfg, 0.5, 30*time.Minute))
	if met.FailedCommands == 0 {
		t.Error("expected some silent OOB failures")
	}
	// Guardrail: despite failures, re-issue converges every server.
	for _, l := range row.PoolAppliedLocks(workload.Low) {
		if l != 1110 {
			t.Fatalf("lock not converged despite retries: %v", l)
		}
	}
	if met.LockCommands <= met.FailedCommands {
		t.Error("command accounting inconsistent")
	}
}

func TestBrakeEngagesAndCounts(t *testing.T) {
	cfg := testConfig()
	cfg.BrakeUtil = 0.5 // force brakes at moderate load
	cfg.BrakeReleaseUtil = 0.45
	met := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.7, time.Hour))
	if met.BrakeEvents == 0 {
		t.Fatal("expected brake events with a low brake threshold")
	}
	// Braked GPUs crawl: latencies must be visibly inflated vs unbraked.
	unbraked := runRow(t, testConfig(), &recordingCtrl{}, flatPlan(testConfig(), 0.7, time.Hour))
	bp99 := stats.Percentile(met.LatencySec[workload.Low], 99)
	up99 := stats.Percentile(unbraked.LatencySec[workload.Low], 99)
	if bp99 < 1.3*up99 {
		t.Errorf("braked p99 %.1f not clearly above unbraked %.1f", bp99, up99)
	}
}

func TestSheddingUnderOverload(t *testing.T) {
	cfg := testConfig()
	met := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 1.4, time.Hour))
	if met.Dropped[workload.Low]+met.Dropped[workload.High] == 0 {
		t.Error("expected drops under 140% offered load")
	}
	// Bounded queueing keeps latencies finite and sane.
	if p99 := stats.Percentile(met.LatencySec[workload.Low], 99); p99 > 600 {
		t.Errorf("p99 latency %.0f s despite bounded buffers", p99)
	}
}

func TestCappingSlowsLowPriority(t *testing.T) {
	cfg := testConfig()
	cfg.OOBFailureProb = 0
	capped := runRow(t, cfg, &recordingCtrl{lockLP: 1110}, flatPlan(cfg, 0.4, time.Hour))
	free := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.4, time.Hour))
	cp50 := stats.Percentile(capped.LatencySec[workload.Low], 50)
	fp50 := stats.Percentile(free.LatencySec[workload.Low], 50)
	if cp50 <= fp50 {
		t.Errorf("capped LP p50 %.2f should exceed uncapped %.2f", cp50, fp50)
	}
	// The slowdown is bounded (memory-bound workload): < 15%.
	if cp50 > 1.15*fp50 {
		t.Errorf("capped LP p50 %.2f implausibly slow vs %.2f", cp50, fp50)
	}
	// Power drops under the cap.
	if capped.Util.Mean() >= free.Util.Mean() {
		t.Error("capping should reduce mean power")
	}
}

func TestPowerIntensityRaisesUtil(t *testing.T) {
	base := testConfig()
	hot := testConfig()
	hot.PowerIntensity = 1.05
	mBase := runRow(t, base, &recordingCtrl{}, flatPlan(base, 0.6, 30*time.Minute))
	mHot := runRow(t, hot, &recordingCtrl{}, flatPlan(hot, 0.6, 30*time.Minute))
	if mHot.Util.Mean() <= mBase.Util.Mean() {
		t.Error("+5% intensity should raise utilization")
	}
	ratio := mHot.Util.Mean() / mBase.Util.Mean()
	if ratio < 1.02 || ratio > 1.08 {
		t.Errorf("intensity ratio = %.3f, want ~1.04", ratio)
	}
}

func TestThroughputHelper(t *testing.T) {
	m := cluster.Metrics{
		Completed: map[workload.Priority]int{workload.Low: 100},
		Util:      stats.Series{Step: time.Second, Values: make([]float64, 100)},
	}
	if got := m.Throughput(workload.Low, 10); got != 0.1 {
		t.Errorf("throughput = %v, want 0.1", got)
	}
	if m.Throughput(workload.Low, 0) != 0 {
		t.Error("zero servers should yield zero throughput")
	}
}

func TestPoolSizes(t *testing.T) {
	cfg := testConfig()
	cfg.LowPriorityFraction = 0.25
	eng := sim.New(1)
	row := cluster.MustRow(eng, cfg, &recordingCtrl{})
	if row.PoolSize(workload.Low) != 2 || row.PoolSize(workload.High) != 6 {
		t.Errorf("pool sizes = %d/%d, want 2/6",
			row.PoolSize(workload.Low), row.PoolSize(workload.High))
	}
}

func TestNewRowInvalidConfig(t *testing.T) {
	if _, err := cluster.NewRow(sim.New(1), cluster.RowConfig{}, &recordingCtrl{}); err == nil {
		t.Error("invalid config should return an error")
	}
}

func TestMustRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRow with invalid config should panic")
		}
	}()
	cluster.MustRow(sim.New(1), cluster.RowConfig{}, &recordingCtrl{})
}

func TestNewRowNilControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil controller should panic (programmer error)")
		}
	}()
	cluster.NewRow(sim.New(1), testConfig(), nil) //nolint:errcheck // panics before returning
}
