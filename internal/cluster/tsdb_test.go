package cluster_test

import (
	"math"
	"strconv"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/sim"
)

// runRowWithTSDB runs a row with the full telemetry pipeline attached —
// tracer, registry, TSDB (raw step = the telemetry interval), and the
// given ruleset — and returns the metrics and observer.
func runRowWithTSDB(t *testing.T, cfg cluster.RowConfig, ctrl cluster.Controller,
	busy float64, horizon time.Duration, rulesSrc string) (*cluster.Metrics, *obs.Observer) {
	t.Helper()
	set, err := obs.ParseRules(rulesSrc)
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
	o.DB = obs.NewTSDB(obs.TSDBConfig{Step: cfg.TelemetryInterval})
	o.Rules = obs.NewRules(o.DB, set, o.Tracer)
	eng := sim.New(cfg.Seed)
	eng.SetObserver(o)
	row := cluster.MustRow(eng, cfg, ctrl)
	m := row.Run(flatPlan(cfg, busy, horizon))
	return m, o
}

// TestBreachAlertReconcilesWithGroundTruth is the alert ground-truth
// acceptance criterion: under a fault scenario with a telemetry blackout
// (the figfault setup), the breaker-breach rule's active seconds must
// equal stats.Series.TimeAbove on the run's own full-resolution
// utilization series EXACTLY — both count strictly-above samples times the
// telemetry step — and the fire/resolve events in the trace must
// reconstruct to the same total offline.
func TestBreachAlertReconcilesWithGroundTruth(t *testing.T) {
	cfg := testConfig()
	cfg.AddedFraction = 0.30 // oversubscribed: breaches actually happen
	horizon := 2 * time.Hour
	spec, err := faults.Parse("tblackout=48m+1m12s") // 40% + 1% of 2h, as in the fault figures
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = spec
	m, o := runRowWithTSDB(t, cfg, polca.New(polca.DefaultConfig()), 0.97, horizon,
		"alert breaker-breach row.util > 1 severity page")

	groundTruth := m.Util.TimeAbove(1)
	if groundTruth == 0 {
		t.Fatal("scenario produced no breaches; the reconciliation test needs some")
	}
	st := o.Rules.Alerts()[0]
	if st.Fires == 0 {
		t.Fatal("breach rule never fired")
	}
	if got := st.ActiveSec; got != groundTruth.Seconds() {
		t.Errorf("alert active = %gs, ground truth TimeAbove = %gs; must match exactly",
			got, groundTruth.Seconds())
	}

	// Offline reconstruction from the event trace: every fire pairs with a
	// resolve whose value is the episode's seconds; totals reconcile.
	fires, resolves := 0, 0
	var resolvedSec float64
	openAt := time.Duration(-1)
	var longest float64
	for _, ev := range o.Tracer.Events() {
		switch ev.Kind {
		case obs.KindAlertFire:
			if openAt >= 0 {
				t.Fatal("fire without intervening resolve")
			}
			openAt = ev.At
			fires++
		case obs.KindAlertResolve:
			if openAt < 0 {
				t.Fatal("resolve without open fire")
			}
			// The traced episode length equals the event-timestamp span:
			// fire at the first breaching tick, resolve one step past the
			// last.
			span := (ev.At - openAt).Seconds() + cfg.TelemetryInterval.Seconds()
			if span != ev.Value+cfg.TelemetryInterval.Seconds() {
				// ev.Value counts steps while active including the firing
				// tick; the timestamp span from fire to resolve is the
				// same quantity.
				t.Errorf("episode timestamps span %gs, event value %gs", span, ev.Value)
			}
			resolvedSec += ev.Value
			longest = math.Max(longest, ev.Value)
			openAt = -1
			resolves++
		}
	}
	if fires != st.Fires || fires != resolves {
		t.Errorf("trace has %d fires / %d resolves, summary says %d", fires, resolves, st.Fires)
	}
	if resolvedSec != st.ActiveSec {
		t.Errorf("trace episodes sum to %gs, summary ActiveSec %gs", resolvedSec, st.ActiveSec)
	}
	if longest != st.LongestSec {
		t.Errorf("trace longest episode %gs, summary LongestSec %gs", longest, st.LongestSec)
	}
	// And the full-resolution ground truth agrees on the worst excursion.
	if want := m.Util.LongestRunAbove(1).Seconds(); longest != want {
		t.Errorf("longest episode %gs, LongestRunAbove %gs", longest, want)
	}
}

// TestRollupHierarchyConsistency checks the registered hierarchy end to
// end on a real run: with one row, site power equals row power at every
// retained bucket, and the row's final aggregate equals the sum of the
// per-server series' final samples.
func TestRollupHierarchyConsistency(t *testing.T) {
	cfg := testConfig()
	m, o := runRowWithTSDB(t, cfg, polca.New(polca.DefaultConfig()), 0.8, time.Hour,
		"alert unused row.util > 99")
	_ = m
	db := o.DB
	row := db.Lookup("row.power")
	site := db.Lookup("site.power")
	if row == nil || site == nil {
		t.Fatal("hierarchy series not registered")
	}
	rv, ok1 := row.Last()
	sv, ok2 := site.Last()
	if !ok1 || !ok2 || rv != sv {
		t.Errorf("row.power last = %v,%v; site.power last = %v,%v; single-row site must equal row",
			rv, ok1, sv, ok2)
	}
	var srvSum float64
	for i := 0; i < cfg.Servers(); i++ {
		s := db.Lookup(obs.MergeLabels("server.power", obs.Label("server", strconv.Itoa(i))))
		if s == nil {
			t.Fatalf("server %d power series missing", i)
		}
		v, ok := s.Last()
		if !ok {
			t.Fatalf("server %d power never observed", i)
		}
		srvSum += v
	}
	if math.Abs(srvSum-rv) > 1e-6*math.Max(1, math.Abs(srvSum)) {
		t.Errorf("row.power last = %v, sum of server lasts = %v", rv, srvSum)
	}
	// Row utilization samples in the TSDB mirror the run's own series.
	util := db.Lookup("row.util")
	if v, ok := util.Last(); !ok || v != m.Util.Values[len(m.Util.Values)-1] {
		t.Errorf("row.util last = %v,%v, want %v", v, ok, m.Util.Values[len(m.Util.Values)-1])
	}
}

// TestClusterTSDBMemoryIndependentOfHorizon asserts the acceptance
// criterion at the cluster level: the telemetry footprint of a 64-server
// row is identical after a 1-day and a 7-day run — retention is bounded by
// ring capacity, not run length.
func TestClusterTSDBMemoryIndependentOfHorizon(t *testing.T) {
	run := func(horizon time.Duration) int {
		cfg := testConfig()
		cfg.BaseServers = 64
		m, o := runRowWithTSDB(t, cfg, polca.New(polca.DefaultConfig()), 0.3, horizon,
			"alert breach row.util > 1")
		if m.Arrived[0]+m.Arrived[1] == 0 {
			t.Fatal("no traffic")
		}
		return o.DB.MemoryBytes()
	}
	short := run(time.Hour)
	longHorizon := 24 * time.Hour
	if !testing.Short() {
		longHorizon = 7 * 24 * time.Hour
	}
	long := run(longHorizon)
	if short != long {
		t.Errorf("telemetry memory grew with horizon: %d bytes (1h) vs %d bytes (%v)",
			short, long, longHorizon)
	}
}

// TestServeModeTSDBSignals checks the serve-mode-only series get wired and
// fed: KV occupancy and queue-depth rollups, TTFT/TBT distributions, and
// the good/total SLO counters that drive burn-rate rules — and that the
// footprint stays horizon-independent in serve mode too.
func TestServeModeTSDBSignals(t *testing.T) {
	run := func(horizon time.Duration) (*cluster.Metrics, *obs.Observer) {
		cfg := serveConfig()
		return runRowWithTSDB(t, cfg, polca.New(polca.DefaultConfig()), 0.8, horizon,
			"alert slo-burn burn(row.ttft_ok,row.ttft_total,0.99,1m,10m) > 14.4")
	}
	m, o := run(time.Hour)
	if m.Completed[0]+m.Completed[1] == 0 {
		t.Fatal("no completions")
	}
	db := o.DB
	for _, name := range []string{"row.kv", "row.queue", "row.ttft", "row.tbt"} {
		s := db.Lookup(name)
		if s == nil {
			t.Fatalf("%s not registered in serve mode", name)
		}
		if _, ok := s.Last(); !ok {
			t.Errorf("%s never observed", name)
		}
	}
	totalSeries := db.Lookup("row.ttft_total")
	okSeries := db.Lookup("row.ttft_ok")
	tot, _ := totalSeries.Last()
	okv, _ := okSeries.Last()
	if tot == 0 || okv > tot {
		t.Errorf("SLO counters: ok=%v total=%v, want 0 < ok <= total", okv, tot)
	}
	// Every first token increments the total counter exactly once.
	if int(tot) != m.Completed[0]+m.Completed[1] {
		// Requests still decoding at drain have emitted their first token
		// but not completed; totals can exceed completions, never trail.
		if int(tot) < m.Completed[0]+m.Completed[1] {
			t.Errorf("ttft_total = %v < completions %d", tot, m.Completed[0]+m.Completed[1])
		}
	}

	_, o2 := run(2 * time.Hour)
	if a, b := o.DB.MemoryBytes(), o2.DB.MemoryBytes(); a != b {
		t.Errorf("serve-mode telemetry memory grew with horizon: %d vs %d bytes", a, b)
	}
}
