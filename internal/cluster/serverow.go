package cluster

import (
	"polca/internal/obs"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/workload"
)

// This file is the serve-mode row backend: when RowConfig.Serve is set, the
// row runs one continuous-batching serve.Replica per server instead of the
// slot model, and a serve.Router spreads arrivals across each pool. The
// power-management side — telemetry, brake, controller, OOB pipeline — is
// identical in both modes; only where busy time and power come from changes.

// ServeStats aggregates the serving replicas' scheduler counters across the
// row (all zero in slot mode). BusySec in serve mode records residency
// (enqueue to completion) rather than pure service time, since batched
// execution has no exclusive-service interval.
type ServeStats struct {
	// Batches counts continuous-batching iterations formed row-wide.
	Batches int
	// Preemptions counts sequences bounced to recompute under KV pressure.
	Preemptions int
	// PromptTokens and DecodeTokens count prefill tokens processed and
	// tokens generated.
	PromptTokens int64
	DecodeTokens int64
	// MaxRunning is the deepest running batch any replica reached.
	MaxRunning int
	// KVHighWaterFrac is the highest KV-cache occupancy fraction any replica
	// reached; KVHighWaterEvents counts traced new-high-water emissions.
	KVHighWaterFrac   float64
	KVHighWaterEvents int
	// KVReservedTokens and KVFreedTokens are the cumulative KV ledger; they
	// are equal once every replica has drained (the no-leak invariant).
	KVReservedTokens int64
	KVFreedTokens    int64
	// EnergyJ is the integrated GPU energy of every settled iteration
	// row-wide, in tensor-parallel-group joules (replica per-GPU energy
	// times the group size). The per-request attribution sums to exactly
	// this at drain — the conservation invariant.
	EnergyJ float64
	// CapExtraSec and CapDeltaJ aggregate the iterations' extra seconds and
	// extra (or, negative, saved) group joules versus the DVFS uncapped
	// counterfactual; both are exactly 0 on a run that never capped.
	CapExtraSec float64
	CapDeltaJ   float64
}

// serveMode reports whether the row runs the request-level backend.
func (r *Row) serveMode() bool { return r.cfg.Serve != nil }

// classDigest returns the class's quantile sketch, creating it on first
// use.
func classDigest(m map[string]*obs.Digest, class string) *obs.Digest {
	d := m[class]
	if d == nil {
		d = obs.NewDigest(obs.DefaultCompression)
		m[class] = d
	}
	return d
}

// ServeConfig returns the resolved serving configuration, or nil in slot
// mode.
func (r *Row) ServeConfig() *serve.Config {
	if !r.serveMode() {
		return nil
	}
	c := r.serveCfg
	return &c
}

// initServe builds the per-node replicas and per-pool routers. The serving
// model defaults to the row's model so callers only override what differs.
func (r *Row) initServe() error {
	scfg := *r.cfg.Serve
	if scfg.Model.Params == 0 {
		scfg.Model = r.cfg.Model
		scfg.DType = r.cfg.DType
	}
	scfg = scfg.WithDefaults()
	r.serveCfg = scfg
	if err := scfg.Validate(r.GPUSpec()); err != nil {
		return err
	}
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		rt, err := serve.NewRouter(scfg.Router)
		if err != nil {
			return err
		}
		r.routers[p] = rt
	}
	r.metrics.TTFT = map[string]*obs.Digest{}
	r.metrics.TBT = map[string]*obs.Digest{}
	r.metrics.ClassEnergyJ = map[string]float64{}
	r.metrics.ClassTokens = map[string]int64{}
	for _, n := range r.nodes {
		n := n
		rep, err := serve.NewReplica(r.eng, scfg, n.dev, n.idx, int8(n.pri))
		if err != nil {
			return err
		}
		rep.OnFirstToken = func(s *serve.Seq, now sim.Time) {
			sec := s.TTFTSeconds()
			classDigest(r.metrics.TTFT, s.Req.Class).Add(sec)
			r.tsdb.observeFirstToken(now, sec)
		}
		rep.OnComplete = func(s *serve.Seq, now sim.Time) {
			pri := s.Req.Priority
			r.metrics.Completed[pri]++
			r.metrics.LatencySec[pri] = append(r.metrics.LatencySec[pri], (now - s.Req.Arrival).Seconds())
			r.metrics.BusySec[pri] += (now - s.Enqueued).Seconds()
			tbt := s.MeanTBTSeconds()
			classDigest(r.metrics.TBT, s.Req.Class).Add(tbt)
			if ts := r.tsdb; ts != nil {
				ts.tbt.Observe(now, tbt)
			}
			r.metrics.ClassEnergyJ[s.Req.Class] += s.EnergyJ()
			r.metrics.ClassTokens[s.Req.Class] += int64(s.Decoded())
			r.completedCtr[pri].Inc()
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{
					At: now, Kind: obs.KindComplete, Server: int32(n.idx), Pool: int8(pri),
					Value: (now - s.Req.Arrival).Seconds(),
				})
			}
		}
		rep.OnDrop = func(s *serve.Seq, now sim.Time, reason string) {
			pri := s.Req.Priority
			r.metrics.Dropped[pri]++
			// Dropped requests keep their partial attribution so per-class
			// energy still sums to the replica-integrated total.
			r.metrics.ClassEnergyJ[s.Req.Class] += s.EnergyJ()
			r.metrics.ClassTokens[s.Req.Class] += int64(s.Decoded())
			r.droppedCtr[pri].Inc()
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{
					At: now, Kind: obs.KindDrop, Server: int32(n.idx), Pool: int8(pri),
					Reason: reason,
				})
			}
		}
		n.rep = rep
	}
	return nil
}

// dispatchServe routes one request to a replica in its priority pool. Dead
// nodes are excluded from the endpoint set; an empty set or a full replica
// queue sheds the request, as the slot model's bounded buffer does.
func (r *Row) dispatchServe(now sim.Time, req workload.Request) {
	pri := req.Priority
	eps := r.serveEps[pri][:0]
	nodes := r.serveNodes[pri][:0]
	for _, n := range r.pools[pri] {
		if n.dead {
			continue
		}
		eps = append(eps, serve.Endpoint{Rep: n.rep, CappedMHz: n.appliedLock})
		nodes = append(nodes, n)
	}
	r.serveEps[pri], r.serveNodes[pri] = eps, nodes
	i := r.routers[pri].Pick(eps, req)
	if i < 0 {
		r.dropServe(now, -1, pri, "no-server")
		return
	}
	n := nodes[i]
	if !n.rep.Enqueue(now, req) {
		r.dropServe(now, int32(n.idx), pri, "queue-full")
		return
	}
	if q := n.rep.QueueLen(); q > r.metrics.MaxQueueLen {
		r.metrics.MaxQueueLen = q
	}
}

// dropServe records a shed request (router found no live replica, or the
// chosen replica's queue was full).
func (r *Row) dropServe(now sim.Time, srv int32, pri workload.Priority, reason string) {
	r.metrics.Dropped[pri]++
	r.droppedCtr[pri].Inc()
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindDrop, Server: srv, Pool: int8(pri), Reason: reason,
		})
	}
}

// finalizeServe folds the replicas' scheduler counters into the run
// metrics. Called once at the end of Run/RunRequests.
func (r *Row) finalizeServe() {
	if !r.serveMode() {
		return
	}
	st := &r.metrics.Serve
	group := float64(r.serveCfg.TensorParallel)
	for _, n := range r.nodes {
		s := n.rep.Stats()
		st.Batches += s.Batches
		st.Preemptions += s.Preemptions
		st.PromptTokens += s.PromptTokens
		st.DecodeTokens += s.DecodeTokens
		st.KVHighWaterEvents += s.KVHighWaterEvents
		st.KVReservedTokens += s.KVReservedTokens
		st.KVFreedTokens += s.KVFreedTokens
		st.EnergyJ += s.EnergyJ * group
		st.CapExtraSec += s.CapExtraSec
		st.CapDeltaJ += s.CapDeltaJ * group
		if s.MaxRunning > st.MaxRunning {
			st.MaxRunning = s.MaxRunning
		}
		if s.KVHighWaterFrac > st.KVHighWaterFrac {
			st.KVHighWaterFrac = s.KVHighWaterFrac
		}
	}
}
