package cluster

import (
	"time"

	"polca/internal/obs"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/workload"
)

// This file is the serve-mode row backend: when RowConfig.Serve is set, the
// row runs one continuous-batching serve.Replica per server instead of the
// slot model, and a serve.Router spreads arrivals across each pool. The
// power-management side — telemetry, brake, controller, OOB pipeline — is
// identical in both modes; only where busy time and power come from changes.

// ServeStats aggregates the serving replicas' scheduler counters across the
// row (all zero in slot mode). BusySec in serve mode records residency
// (enqueue to completion) rather than pure service time, since batched
// execution has no exclusive-service interval.
type ServeStats struct {
	// Batches counts continuous-batching iterations formed row-wide.
	Batches int
	// Preemptions counts sequences bounced to recompute under KV pressure.
	Preemptions int
	// PromptTokens and DecodeTokens count prefill tokens processed and
	// tokens generated.
	PromptTokens int64
	DecodeTokens int64
	// MaxRunning is the deepest running batch any replica reached.
	MaxRunning int
	// KVHighWaterFrac is the highest KV-cache occupancy fraction any replica
	// reached; KVHighWaterEvents counts traced new-high-water emissions.
	KVHighWaterFrac   float64
	KVHighWaterEvents int
	// KVReservedTokens and KVFreedTokens are the cumulative KV ledger; they
	// are equal once every replica has drained (the no-leak invariant).
	KVReservedTokens int64
	KVFreedTokens    int64
	// EnergyJ is the integrated GPU energy of every settled iteration
	// row-wide, in tensor-parallel-group joules (replica per-GPU energy
	// times the group size). The per-request attribution sums to exactly
	// this at drain — the conservation invariant.
	EnergyJ float64
	// CapExtraSec and CapDeltaJ aggregate the iterations' extra seconds and
	// extra (or, negative, saved) group joules versus the DVFS uncapped
	// counterfactual; both are exactly 0 on a run that never capped.
	CapExtraSec float64
	CapDeltaJ   float64
}

// serveMode reports whether the row runs the request-level backend.
func (r *Row) serveMode() bool { return r.cfg.Serve != nil }

// retryEntry is one failed-over request waiting to re-enter the router.
// seq is a monotonic admission counter so equal due times replay in FIFO
// order — the heap order is total and the retry stream deterministic.
type retryEntry struct {
	due sim.Time
	seq uint64
	req workload.Request
}

// retryQueue is a by-value min-heap of retry entries ordered by (due,
// seq). Entries are stored inline and the backing array is reused, so the
// steady-state push/pop cycle allocates nothing.
type retryQueue struct {
	entries []retryEntry
}

func (q *retryQueue) len() int { return len(q.entries) }

func (q *retryQueue) less(a, b int) bool {
	ea, eb := &q.entries[a], &q.entries[b]
	if ea.due != eb.due {
		return ea.due < eb.due
	}
	return ea.seq < eb.seq
}

func (q *retryQueue) min() *retryEntry { return &q.entries[0] }

func (q *retryQueue) push(e retryEntry) {
	q.entries = append(q.entries, e)
	i := len(q.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
		i = parent
	}
}

func (q *retryQueue) pop() retryEntry {
	top := q.entries[0]
	last := len(q.entries) - 1
	q.entries[0] = q.entries[last]
	q.entries[last] = retryEntry{}
	q.entries = q.entries[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		smallest := i
		if l < last && q.less(l, smallest) {
			smallest = l
		}
		if rr < last && q.less(rr, smallest) {
			smallest = rr
		}
		if smallest == i {
			break
		}
		q.entries[i], q.entries[smallest] = q.entries[smallest], q.entries[i]
		i = smallest
	}
	return top
}

// buildShedRanks orders the workload classes by how expendable they are
// to SLO-class-aware shedding, derived from each class's traffic split
// rather than its name: a class running entirely at low priority is batch
// work (rank 0, shed first); a class split across both pools serves
// interactive sessions whose SLO the paper calls latency-critical (rank
// 2, shed last, never at severity 1); everything else is standard
// interactive (rank 1). On Table 6 this maps summarize→0, search→1,
// chat→2. The rank is a property of the class, not the request: a chat
// turn routed to the low-priority pool is still a critical-class request.
func buildShedRanks(classes []workload.Class) map[string]int {
	ranks := make(map[string]int, len(classes))
	for _, c := range classes {
		switch {
		case c.LowShare >= 1:
			ranks[c.Name] = 0
		case c.LowShare > 0:
			ranks[c.Name] = 2
		default:
			ranks[c.Name] = 1
		}
	}
	return ranks
}

// shedRank resolves a request's shed rank; requests from classes outside
// the configured table (replayed foreign traces) fall back to priority.
func (r *Row) shedRank(req workload.Request) int {
	if rank, ok := r.shedRanks[req.Class]; ok {
		return rank
	}
	if req.Priority == workload.Low {
		return 0
	}
	return 1
}

// classDigest returns the class's quantile sketch, creating it on first
// use.
func classDigest(m map[string]*obs.Digest, class string) *obs.Digest {
	d := m[class]
	if d == nil {
		d = obs.NewDigest(obs.DefaultCompression)
		m[class] = d
	}
	return d
}

// ServeConfig returns the resolved serving configuration, or nil in slot
// mode.
func (r *Row) ServeConfig() *serve.Config {
	if !r.serveMode() {
		return nil
	}
	c := r.serveCfg
	return &c
}

// initServe builds the per-node replicas and per-pool routers. The serving
// model defaults to the row's model so callers only override what differs.
func (r *Row) initServe() error {
	scfg := *r.cfg.Serve
	if scfg.Model.Params == 0 {
		scfg.Model = r.cfg.Model
		scfg.DType = r.cfg.DType
	}
	scfg = scfg.WithDefaults()
	r.serveCfg = scfg
	if err := scfg.Validate(r.GPUSpec()); err != nil {
		return err
	}
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		rt, err := serve.NewRouter(scfg.Router)
		if err != nil {
			return err
		}
		r.routers[p] = rt
	}
	r.metrics.TTFT = map[string]*obs.Digest{}
	r.metrics.TBT = map[string]*obs.Digest{}
	r.metrics.ClassEnergyJ = map[string]float64{}
	r.metrics.ClassTokens = map[string]int64{}
	r.metrics.ClassArrived = map[string]int{}
	r.metrics.ClassSLOOK = map[string]int{}
	r.metrics.ClassShed = map[string]int{}
	if r.cfg.ShedRanks != nil {
		r.shedRanks = r.cfg.ShedRanks
	} else {
		r.shedRanks = buildShedRanks(r.cfg.Classes)
	}
	r.retryPumpFn = r.retryPump
	slo := r.cfg.TTFTSLO
	if slo == 0 {
		slo = defaultTTFTSLO
	}
	sloSec := slo.Seconds()
	for _, n := range r.nodes {
		n := n
		rep, err := serve.NewReplica(r.eng, scfg, n.dev, n.idx, int8(n.pri))
		if err != nil {
			return err
		}
		rep.OnFirstToken = func(s *serve.Seq, now sim.Time) {
			sec := s.TTFTSeconds()
			classDigest(r.metrics.TTFT, s.Req.Class).Add(sec)
			if sec <= sloSec {
				r.metrics.ClassSLOOK[s.Req.Class]++
			}
			r.tsdb.observeFirstToken(now, sec)
		}
		rep.OnComplete = func(s *serve.Seq, now sim.Time) {
			pri := s.Req.Priority
			r.metrics.Completed[pri]++
			r.metrics.LatencySec[pri] = append(r.metrics.LatencySec[pri], (now - s.Req.Arrival).Seconds())
			r.metrics.BusySec[pri] += (now - s.Enqueued).Seconds()
			tbt := s.MeanTBTSeconds()
			classDigest(r.metrics.TBT, s.Req.Class).Add(tbt)
			if ts := r.tsdb; ts != nil {
				ts.tbt.Observe(now, tbt)
			}
			r.metrics.ClassEnergyJ[s.Req.Class] += s.EnergyJ()
			r.metrics.ClassTokens[s.Req.Class] += int64(s.Decoded())
			r.completedCtr[pri].Inc()
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{
					At: now, Kind: obs.KindComplete, Server: int32(n.idx), Pool: int8(pri),
					Value: (now - s.Req.Arrival).Seconds(),
				})
			}
		}
		rep.OnDrop = func(s *serve.Seq, now sim.Time, reason string) {
			pri := s.Req.Priority
			// Dropped requests keep their partial attribution so per-class
			// energy still sums to the replica-integrated total — including
			// failed attempts that the failover path re-admits (the retried
			// attempt recomputes from scratch, but the energy was spent).
			r.metrics.ClassEnergyJ[s.Req.Class] += s.EnergyJ()
			r.metrics.ClassTokens[s.Req.Class] += int64(s.Decoded())
			if r.cfg.ServeRetries > 0 && s.Req.Retry < r.cfg.ServeRetries {
				// The *Seq is recycled after this callback; requeue takes the
				// request by value, so nothing outlives it.
				r.requeueServe(now, int32(n.idx), s.Req, reason)
				return
			}
			if r.cfg.ServeRetries > 0 {
				reason = "retry-exhausted"
				r.metrics.ServeRetryExhausted++
			}
			r.metrics.Dropped[pri]++
			r.droppedCtr[pri].Inc()
			if r.tracer != nil {
				r.tracer.Emit(obs.Event{
					At: now, Kind: obs.KindDrop, Server: int32(n.idx), Pool: int8(pri),
					Reason: reason,
				})
			}
		}
		n.rep = rep
	}
	return nil
}

// dispatchServe routes one request to a replica in its priority pool. Dead,
// draining, and circuit-open nodes are excluded from the endpoint set; an
// empty set or a full replica queue sheds the request — or, with the
// failover path armed, requeues it for a bounded, backed-off retry. With
// class shedding armed, a power emergency degrades admission by shed rank
// before routing is even attempted.
func (r *Row) dispatchServe(now sim.Time, req workload.Request) {
	pri := req.Priority
	if req.Retry == 0 {
		r.metrics.ClassArrived[req.Class]++
	}
	if r.cfg.ServeClassShed && r.shedLevel > 0 && r.shedRank(req) < r.shedLevel {
		r.metrics.ClassShed[req.Class]++
		r.dropServe(now, -1, req, "class-shed")
		return
	}
	circuit := r.cfg.ServeCircuitSheds > 0
	eps := r.serveEps[pri][:0]
	nodes := r.serveNodes[pri][:0]
	for _, n := range r.pools[pri] {
		if n.dead || n.draining() || (circuit && now < n.circuitUntil) {
			continue
		}
		ep := serve.Endpoint{Rep: n.rep, CappedMHz: n.appliedLock}
		ep.Snapshot()
		eps = append(eps, ep)
		nodes = append(nodes, n)
	}
	r.serveEps[pri], r.serveNodes[pri] = eps, nodes
	i := r.routers[pri].Pick(eps, req)
	r.recordRouteDecision(now, req, eps, nodes, i)
	if i < 0 {
		r.failServe(now, -1, req, "no-server")
		return
	}
	n := nodes[i]
	if !n.rep.Enqueue(now, req) {
		r.noteShed(n, now)
		r.failServe(now, int32(n.idx), req, "queue-full")
		return
	}
	if q := n.rep.QueueLen(); q > r.metrics.MaxQueueLen {
		r.metrics.MaxQueueLen = q
	}
}

// recordRouteDecision snapshots one router pick into the decision log: the
// request's routing-relevant fields and the exact candidate set (server
// index, load, KV occupancy, applied cap) the router chose from. The
// candidate scratch slice is reused across calls and copied into the
// recorder's arena, so steady-state recording allocates nothing.
func (r *Row) recordRouteDecision(now sim.Time, req workload.Request, eps []serve.Endpoint, nodes []*node, pick int) {
	if r.dec == nil {
		return
	}
	cands := r.decCands[:0]
	for j := range eps {
		cands = append(cands, obs.RouteCandidate{
			Server:    int32(nodes[j].idx),
			Load:      int32(eps[j].Load),
			KVFrac:    eps[j].KVFrac,
			CappedMHz: eps[j].CappedMHz,
		})
	}
	r.decCands = cands
	chosen := int32(-1)
	if pick >= 0 {
		chosen = int32(pick)
	}
	r.dec.RecordRoute(obs.Decision{
		At:      now,
		ReqID:   req.ID,
		Class:   req.Class,
		Pri:     int8(req.Priority),
		Retry:   int32(req.Retry),
		Session: req.Session,
		Prefix:  req.PrefixGroup,
		Chosen:  chosen,
	}, cands)
}

// failServe handles a request the router could not place: with retry
// budget remaining it re-enters the router after a deterministic backoff,
// otherwise it is finally dropped.
func (r *Row) failServe(now sim.Time, srv int32, req workload.Request, reason string) {
	if r.cfg.ServeRetries > 0 {
		if req.Retry < r.cfg.ServeRetries {
			r.requeueServe(now, srv, req, reason)
			return
		}
		reason = "retry-exhausted"
		r.metrics.ServeRetryExhausted++
	}
	r.dropServe(now, srv, req, reason)
}

// requeueServe pushes a failed-over request onto the retry queue and arms
// the pump. The backoff is base × 2^(attempt-1) capped at 64× base, a pure
// function of the attempt count — no randomness, so the rand-audit
// invariant and byte-identical reruns hold.
func (r *Row) requeueServe(now sim.Time, srv int32, req workload.Request, reason string) {
	req.Retry++
	r.metrics.ServeRetries++
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindRetry, Server: srv, Pool: int8(req.Priority),
			Value: float64(req.Retry), Reason: reason,
		})
	}
	base := r.cfg.ServeRetryBackoff
	if base <= 0 {
		base = r.cfg.TelemetryInterval
	}
	shift := req.Retry - 1
	if shift > 6 {
		shift = 6
	}
	due := now + base<<shift
	r.retrySeq++
	r.retryQ.push(retryEntry{due: due, seq: r.retrySeq, req: req})
	if r.retryArmed == 0 || due < r.retryArmed {
		r.retryArmed = due
		r.eng.At(due, r.retryPumpFn)
	}
}

// retryPump re-dispatches every retry entry that has come due, then
// re-arms itself for the next one. Stale pump firings (a later entry armed
// an earlier time) are harmless: the loop is idempotent and the re-arm
// only schedules when the armed time improves.
func (r *Row) retryPump(now sim.Time) {
	if r.retryArmed != 0 && now >= r.retryArmed {
		r.retryArmed = 0
	}
	for r.retryQ.len() > 0 && r.retryQ.min().due <= now {
		e := r.retryQ.pop()
		r.dispatchServe(now, e.req)
	}
	if r.retryQ.len() > 0 {
		due := r.retryQ.min().due
		if r.retryArmed == 0 || due < r.retryArmed {
			r.retryArmed = due
			r.eng.At(due, r.retryPumpFn)
		}
	}
}

// noteShed feeds the per-replica circuit breaker: enough queue-full sheds
// within one telemetry epoch (the counters reset every tick) trip the
// node's admission circuit for the cooldown, steering the router away from
// a hot-spotted replica instead of hammering it.
func (r *Row) noteShed(n *node, now sim.Time) {
	if r.cfg.ServeCircuitSheds <= 0 {
		return
	}
	n.shedEpoch++
	if n.shedEpoch != r.cfg.ServeCircuitSheds || now < n.circuitUntil {
		return
	}
	cooldown := r.cfg.ServeCircuitCooldown
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	n.circuitUntil = now + cooldown
	r.metrics.CircuitOpens++
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindCircuitOpen, Server: int32(n.idx), Pool: int8(n.pri),
			Value: float64(n.shedEpoch),
		})
	}
}

// serveHealthTick runs the serve-mode health bookkeeping once per
// telemetry epoch: circuit-breaker shed counters reset, and the class-shed
// severity tracks the row's emergency signals. A row with the knobs off
// pays two branch checks.
func (r *Row) serveHealthTick(now sim.Time) {
	if !r.serveMode() {
		return
	}
	if r.cfg.ServeCircuitSheds > 0 {
		for _, n := range r.nodes {
			n.shedEpoch = 0
		}
	}
	if !r.cfg.ServeClassShed {
		return
	}
	lvl, reason := r.shedTarget()
	if lvl != r.shedLevel {
		r.shedLevel = lvl
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: now, Kind: obs.KindShedLevel, Server: -1, Pool: obs.PoolNone,
				Value: float64(lvl), Reason: reason,
			})
		}
	}
}

// shedTarget computes the class-shed severity from the row's emergency
// signals: 2 (shed everything below critical) while the brake is pending
// or engaged or the watchdog holds the row, 1 (shed batch traffic) under a
// deep frequency cap or sustained KV high water, 0 otherwise.
func (r *Row) shedTarget() (int, string) {
	if r.braked || r.brakePending {
		return 2, "brake"
	}
	if r.watchdogEngaged {
		return 2, "watchdog"
	}
	high := false
	deep := false
	for _, n := range r.nodes {
		if n.dead {
			continue
		}
		if n.appliedLock > 0 && n.appliedLock <= r.wdLPMHz {
			deep = true
		}
		if n.rep.KVFrac() >= serveKVShedFrac {
			high = true
		}
	}
	if high {
		r.kvHighTicks++
	} else {
		r.kvHighTicks = 0
	}
	switch {
	case deep:
		return 1, "deep-cap"
	case r.kvHighTicks >= serveKVShedTicks:
		return 1, "kv-pressure"
	}
	return 0, ""
}

// serveKVShedFrac and serveKVShedTicks define "sustained KV high water"
// for the class-shed severity: some replica's KV occupancy at or above the
// fraction for that many consecutive telemetry epochs.
const (
	serveKVShedFrac  = 0.90
	serveKVShedTicks = 3
)

// dropServe finally drops a request the serving path could not place
// (router found no live replica, the chosen replica's queue was full, the
// class shedder refused it, or its retry budget ran out). When span
// tracing is on, a request that never reached a replica still gets a root
// span so the analyzer sees every outcome.
func (r *Row) dropServe(now sim.Time, srv int32, req workload.Request, reason string) {
	pri := req.Priority
	r.metrics.Dropped[pri]++
	r.droppedCtr[pri].Inc()
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindDrop, Server: srv, Pool: int8(pri), Reason: reason,
		})
	}
	if r.spanSink != nil {
		r.spanSink.Emit(obs.Span{
			Req: req.ID, ID: 1, Kind: obs.SpanRequest,
			Start: req.Arrival, End: now,
			Server: srv, Pool: int8(pri), Class: req.Class,
			TTFTSec: -1, Reason: reason, Retry: int32(req.Retry),
		})
	}
}

// finalizeServe folds the replicas' scheduler counters into the run
// metrics. Called once at the end of Run/RunRequests.
func (r *Row) finalizeServe() {
	if !r.serveMode() {
		return
	}
	// Requests still waiting in the retry queue when the run drains are
	// final drops — the conservation invariant (arrived = completed +
	// dropped) must hold at drain.
	for r.retryQ.len() > 0 {
		e := r.retryQ.pop()
		r.dropServe(r.eng.Now(), -1, e.req, "end-of-run")
	}
	st := &r.metrics.Serve
	group := float64(r.serveCfg.TensorParallel)
	for _, n := range r.nodes {
		s := n.rep.Stats()
		st.Batches += s.Batches
		st.Preemptions += s.Preemptions
		st.PromptTokens += s.PromptTokens
		st.DecodeTokens += s.DecodeTokens
		st.KVHighWaterEvents += s.KVHighWaterEvents
		st.KVReservedTokens += s.KVReservedTokens
		st.KVFreedTokens += s.KVFreedTokens
		st.EnergyJ += s.EnergyJ * group
		st.CapExtraSec += s.CapExtraSec
		st.CapDeltaJ += s.CapDeltaJ * group
		if s.MaxRunning > st.MaxRunning {
			st.MaxRunning = s.MaxRunning
		}
		if s.KVHighWaterFrac > st.KVHighWaterFrac {
			st.KVHighWaterFrac = s.KVHighWaterFrac
		}
	}
}
