package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"polca/internal/gpu"
	"polca/internal/plan"
	"polca/internal/server"
	"polca/internal/stats"
)

// TrainingJob is a synchronous training job occupying a group of servers.
// All servers in the job execute the same iteration phases in lockstep —
// the source of the paper's coordinated power swings (Insight 2).
type TrainingJob struct {
	Profile plan.TrainingConfig
	Servers int
	// StartOffset staggers the job's first iteration.
	StartOffset time.Duration
	// IterJitter is the relative standard deviation of per-iteration
	// duration (stragglers, data loading variation).
	IterJitter float64
}

// TrainingRowConfig describes a training cluster row for the Table 4
// characterization.
type TrainingRowConfig struct {
	// ProvisionedPerServerWatts is the per-server power slice. Training
	// rows are provisioned close to the realistic server peak: the paper
	// observes only ~3% headroom on training clusters.
	ProvisionedPerServerWatts float64
	Jobs                      []TrainingJob
	// TelemetryInterval is the row manager sampling period.
	TelemetryInterval time.Duration
	// Knob optionally applies a uniform frequency lock or power cap to
	// every GPU in the row (0 values = uncontrolled).
	LockClockMHz  float64
	PowerCapWatts float64
}

// ProductionTraining returns a training row mirroring the paper's
// production observations: 40 servers split across three synchronized
// fine-tuning jobs with different trough behaviours.
func ProductionTraining() TrainingRowConfig {
	profiles := plan.TrainingProfiles()
	return TrainingRowConfig{
		ProvisionedPerServerWatts: 6000,
		TelemetryInterval:         2 * time.Second,
		Jobs: []TrainingJob{
			{Profile: profiles[0], Servers: 18, StartOffset: 0, IterJitter: 0.05},                       // RoBERTa
			{Profile: profiles[1], Servers: 12, StartOffset: 700 * time.Millisecond, IterJitter: 0.05},  // GPT-NeoX
			{Profile: profiles[2], Servers: 10, StartOffset: 1500 * time.Millisecond, IterJitter: 0.05}, // Flan-T5
		},
	}
}

// Servers returns the total server count across jobs.
func (c TrainingRowConfig) Servers() int {
	n := 0
	for _, j := range c.Jobs {
		n += j.Servers
	}
	return n
}

// ProvisionedWatts returns the row's power budget.
func (c TrainingRowConfig) ProvisionedWatts() float64 {
	return float64(c.Servers()) * c.ProvisionedPerServerWatts
}

// Validate reports whether the configuration is usable.
func (c TrainingRowConfig) Validate() error {
	switch {
	case c.ProvisionedPerServerWatts <= 0:
		return fmt.Errorf("cluster: no per-server budget")
	case len(c.Jobs) == 0:
		return fmt.Errorf("cluster: no training jobs")
	case c.TelemetryInterval <= 0:
		return fmt.Errorf("cluster: non-positive telemetry interval")
	}
	for _, j := range c.Jobs {
		if j.Servers <= 0 {
			return fmt.Errorf("cluster: job with no servers")
		}
		if j.IterJitter < 0 || j.IterJitter > 0.5 {
			return fmt.Errorf("cluster: bad iteration jitter %v", j.IterJitter)
		}
	}
	return nil
}

// trainingSegment is one constant-power stretch of a job's execution.
type trainingSegment struct {
	until time.Duration // end time of the segment
	watts float64       // per-server power
}

// trainingWarmup is the initial stretch discarded from training-row
// series: the cold-start ramp (all jobs beginning within seconds) is not a
// steady-state power swing and would otherwise dominate the Table 4 spike
// metrics.
const trainingWarmup = 2 * time.Minute

// SimulateTraining generates the row's utilization series over the horizon
// (Table 4's training column), after discarding a cold-start warmup. It is
// deterministic for a given source.
func SimulateTraining(cfg TrainingRowConfig, horizon time.Duration, rng *rand.Rand) (stats.Series, error) {
	if err := cfg.Validate(); err != nil {
		return stats.Series{}, err
	}
	horizon += trainingWarmup
	spec := server.DGXA100(gpu.A100SXM40GB())
	srv := server.New(0, spec)

	// Build each job's piecewise-constant per-server power timeline.
	timelines := make([][]trainingSegment, len(cfg.Jobs))
	for ji, job := range cfg.Jobs {
		tr, err := plan.NewTraining(job.Profile)
		if err != nil {
			return stats.Series{}, err
		}
		dev := gpu.NewDevice(spec.GPU)
		if cfg.LockClockMHz > 0 {
			dev.LockClock(cfg.LockClockMHz)
		}
		if cfg.PowerCapWatts > 0 {
			dev.SetPowerCap(cfg.PowerCapWatts)
		}
		// Execute one iteration to obtain the phase segments; repeat with
		// jitter until the horizon. Each phase is recorded at its mean
		// power — the row manager's interval-averaged readings smooth the
		// ~100 ms reactive-cap overshoot out of row-level data.
		var iter []gpu.Segment
		for _, ph := range tr.Phases() {
			e := dev.Run(ph)
			if e.Duration <= 0 {
				continue
			}
			iter = append(iter, gpu.Segment{
				Duration: e.Duration,
				Counters: gpu.Counters{PowerWatts: e.MeanPower()},
			})
		}
		var segs []trainingSegment
		at := job.StartOffset
		if at > 0 {
			segs = append(segs, trainingSegment{until: at, watts: srv.IdleWatts()})
		}
		for at < horizon {
			jit := 1 + job.IterJitter*rng.NormFloat64()
			if jit < 0.5 {
				jit = 0.5
			}
			for _, s := range iter {
				at += time.Duration(float64(s.Duration) * jit)
				gpuW := s.Counters.PowerWatts * float64(spec.GPUCount)
				segs = append(segs, trainingSegment{until: at, watts: srv.PowerFromGPUs(gpuW)})
			}
		}
		timelines[ji] = segs
	}

	// Sample the aggregate at the telemetry interval, skipping the warmup.
	skip := int(trainingWarmup / cfg.TelemetryInterval)
	n := int(horizon/cfg.TelemetryInterval) - skip
	out := stats.Series{Start: 0, Step: cfg.TelemetryInterval, Values: make([]float64, n)}
	idx := make([]int, len(cfg.Jobs))
	prov := cfg.ProvisionedWatts()
	for i := 0; i < n; i++ {
		ts := time.Duration(i+skip) * cfg.TelemetryInterval
		var total float64
		for ji, segs := range timelines {
			for idx[ji] < len(segs) && segs[idx[ji]].until <= ts {
				idx[ji]++
			}
			w := srv.IdleWatts()
			if idx[ji] < len(segs) {
				w = segs[idx[ji]].watts
			}
			total += w * float64(cfg.Jobs[ji].Servers)
		}
		out.Values[i] = total / prov
	}
	return out, nil
}

// ClusterComparison holds the Table 4 metrics for one cluster type.
type ClusterComparison struct {
	Name            string
	PeakUtilization float64
	MeanUtilization float64
	MaxSpike2s      float64 // largest rise within 2 s, fraction of provisioned
	MaxSpike40s     float64 // largest rise within the OOB capping latency
}

// SummarizeUtilization derives the Table 4 row metrics from a utilization
// series.
func SummarizeUtilization(name string, util stats.Series) ClusterComparison {
	return ClusterComparison{
		Name:            name,
		PeakUtilization: util.Peak(),
		MeanUtilization: util.Mean(),
		MaxSpike2s:      util.MaxRise(2 * time.Second),
		MaxSpike40s:     util.MaxRise(40 * time.Second),
	}
}
