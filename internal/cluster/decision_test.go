package cluster_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/workload"
)

// runDecisionRow runs a row with only a decision recorder attached (the
// -decisions flag without -trace) and returns the run metrics plus the
// recorder.
func runDecisionRow(t *testing.T, cfg cluster.RowConfig, ctrl cluster.Controller,
	busy float64, horizon time.Duration) (*cluster.Metrics, *obs.DecisionRecorder) {
	t.Helper()
	rec := obs.NewDecisionRecorder()
	o := &obs.Observer{Decisions: rec}
	eng := sim.New(cfg.Seed)
	eng.SetObserver(o)
	row := cluster.MustRow(eng, cfg, ctrl)
	m := row.Run(flatPlan(cfg, busy, horizon))
	return m, rec
}

// faultedServeDecisionConfig is a serve-mode row with enough chaos to
// exercise every tick flag the recorder captures: telemetry loss, a
// controller crash (down + reset + watchdog), and a node death.
func faultedServeDecisionConfig(t *testing.T) cluster.RowConfig {
	t.Helper()
	cfg := serveFTConfig(t, "tdrop=0.15,crash=2m+45,kill=1@6m+1m")
	return cfg
}

// TestDecisionRecordingDoesNotPerturb locks the observability contract for
// the new recorder: attaching it to a fully faulted serve-mode run must not
// change a single simulated aggregate — recording reads row state, never
// writes it.
func TestDecisionRecordingDoesNotPerturb(t *testing.T) {
	cfg := faultedServeDecisionConfig(t)
	mk := func() cluster.Controller {
		return polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
	}
	plain := runRow(t, cfg, mk(), flatPlan(cfg, 0.95, 10*time.Minute))
	recorded, rec := runDecisionRow(t, cfg, mk(), 0.95, 10*time.Minute)
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing; the comparison is vacuous")
	}
	if !reflect.DeepEqual(plain.Util.Values, recorded.Util.Values) {
		t.Error("recording changed the utilization series")
	}
	if plain.LockCommands != recorded.LockCommands ||
		plain.FailedCommands != recorded.FailedCommands ||
		plain.BrakeEvents != recorded.BrakeEvents ||
		plain.WatchdogEngagements != recorded.WatchdogEngagements ||
		plain.NodeDeaths != recorded.NodeDeaths ||
		plain.ServeRetries != recorded.ServeRetries {
		t.Errorf("recording changed control aggregates: %+v vs %+v", plain, recorded)
	}
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		if plain.Arrived[p] != recorded.Arrived[p] ||
			plain.Completed[p] != recorded.Completed[p] ||
			plain.Dropped[p] != recorded.Dropped[p] {
			t.Fatalf("recording changed request aggregates for %v", p)
		}
	}
}

// TestDecisionLogCapturesFaultedServeRun exercises the full recording path
// end to end: a faulted serve-mode day produces tick decisions carrying
// every outage flag, route decisions with candidate snapshots, a header
// describing the row, and a JSONL round trip that preserves all of it.
func TestDecisionLogCapturesFaultedServeRun(t *testing.T) {
	cfg := faultedServeDecisionConfig(t)
	ctrl := polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
	m, rec := runDecisionRow(t, cfg, ctrl, 0.95, 10*time.Minute)

	meta := rec.Meta()
	if meta.Policy != ctrl.Name() {
		t.Errorf("meta.Policy = %q, want %q", meta.Policy, ctrl.Name())
	}
	if meta.Servers != cfg.Servers() || meta.LPServers+meta.HPServers != cfg.Servers() {
		t.Errorf("meta servers %d (%d LP + %d HP), want %d",
			meta.Servers, meta.LPServers, meta.HPServers, cfg.Servers())
	}
	if !meta.Serve || meta.Router != "least-queue" {
		t.Errorf("meta serve/router = %v/%q, want true/least-queue", meta.Serve, meta.Router)
	}
	if meta.TelemetrySec != cfg.TelemetryInterval.Seconds() {
		t.Errorf("meta.TelemetrySec = %v, want %v", meta.TelemetrySec, cfg.TelemetryInterval.Seconds())
	}
	if meta.WatchdogEpochs != cfg.WatchdogEpochs {
		t.Errorf("meta.WatchdogEpochs = %d, want %d", meta.WatchdogEpochs, cfg.WatchdogEpochs)
	}
	if meta.ProvisionedW != cfg.ProvisionedWatts() || meta.BrakeUtil != cfg.BrakeUtil {
		t.Error("meta power-model constants do not match the config")
	}

	recs, arena := rec.Decisions()
	ticks, routes := 0, 0
	var delivered, lost, down, reset, wd int
	for i, d := range recs {
		if d.Seq != uint64(i+1) {
			t.Fatalf("decision %d has seq %d, want %d", i, d.Seq, i+1)
		}
		switch d.Kind {
		case obs.DecTick:
			ticks++
			if d.Delivered {
				delivered++
			}
			if d.Lost {
				lost++
			}
			if d.Down {
				down++
			}
			if d.Reset {
				reset++
			}
			if d.Watchdog {
				wd++
			}
		case obs.DecRoute:
			routes++
			cands := d.Candidates(arena)
			if len(cands) == 0 != (d.Chosen < 0) {
				t.Fatalf("route %d: %d candidates but chosen %d", i, len(cands), d.Chosen)
			}
			if d.Chosen >= int32(len(cands)) {
				t.Fatalf("route %d: chosen %d out of range (%d candidates)", i, d.Chosen, len(cands))
			}
		}
	}
	if ticks != len(m.Util.Values) {
		t.Errorf("recorded %d tick decisions, want one per telemetry sample (%d)", ticks, len(m.Util.Values))
	}
	if routes == 0 {
		t.Fatal("no route decisions recorded in serve mode")
	}
	if delivered == 0 || lost == 0 || down == 0 || reset == 0 || wd == 0 {
		t.Errorf("fault flags missing from the log: delivered=%d lost=%d down=%d reset=%d wd=%d",
			delivered, lost, down, reset, wd)
	}

	// JSONL round trip: everything the recorder holds survives the wire.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []obs.Decision
	var gotCands [][]obs.RouteCandidate
	meta2, err := obs.ScanDecisions(&buf, nil, func(d obs.Decision, cands []obs.RouteCandidate) error {
		got = append(got, d)
		gotCands = append(gotCands, append([]obs.RouteCandidate(nil), cands...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	meta.Schema = obs.DecisionSchema
	if !reflect.DeepEqual(meta2, meta) {
		t.Errorf("meta did not round-trip:\n got %+v\nwant %+v", meta2, meta)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip returned %d decisions, want %d", len(got), len(recs))
	}
	for i := range recs {
		want, wantCands := recs[i], recs[i].Candidates(arena)
		// Arena offsets are scanner-local; compare the resolved snapshots.
		// The wire carries microseconds (t_us), so truncate the expectation.
		want.EpOff, got[i].EpOff = 0, 0
		want.At = want.At / time.Microsecond * time.Microsecond
		if want != got[i] {
			t.Fatalf("decision %d did not round-trip:\n got %+v\nwant %+v", i, got[i], want)
		}
		if !reflect.DeepEqual(wantCands, gotCands[i]) && len(wantCands)+len(gotCands[i]) > 0 {
			t.Fatalf("decision %d candidates did not round-trip", i)
		}
	}
}

// TestDecisionRecorderDroppedBySweepObserver: MetricsOnly must strip the
// recorder, so sweep executors sharing an observer never interleave decision
// streams from parallel rows.
func TestDecisionRecorderDroppedBySweepObserver(t *testing.T) {
	o := &obs.Observer{Decisions: obs.NewDecisionRecorder(), Metrics: obs.NewRegistry()}
	if mo := o.MetricsOnly(); mo.DecisionLog() != nil {
		t.Error("MetricsOnly kept the decision recorder")
	}
	if wl := o.WithLabels("row", "a"); wl.DecisionLog() == nil {
		t.Error("WithLabels dropped the decision recorder")
	}
}
