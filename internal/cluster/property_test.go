package cluster_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"polca/internal/cluster"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// randomCtrl is a fuzzing controller: it issues random (but valid) pool
// lock requests on every telemetry tick, exercising the OOB pipeline and
// mid-flight replanning far harder than any sane policy would.
type randomCtrl struct {
	rng *rand.Rand
}

func (c *randomCtrl) Name() string { return "random" }

func (c *randomCtrl) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	clocks := []float64{0, 1380, 1275, 1110, 990, 700}
	act.SetPoolLock(workload.Low, clocks[c.rng.Intn(len(clocks))])
	act.SetPoolLock(workload.High, clocks[c.rng.Intn(len(clocks))])
}

// TestRowInvariantsUnderRandomConfigs drives randomized small rows with a
// chaotic controller and checks the invariants every run must satisfy:
//
//   - conservation: completed + queued-or-in-flight + dropped == arrived
//   - utilization stays within the physical envelope
//   - latencies are at least a service-time floor and finite
//   - no negative counters
func TestRowInvariantsUnderRandomConfigs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := cluster.Production()
		cfg.BaseServers = 2 + rng.Intn(6)
		cfg.AddedFraction = float64(rng.Intn(5)) / 10
		cfg.LowPriorityFraction = 0.25 + 0.5*rng.Float64()
		cfg.OOBFailureProb = 0.3 * rng.Float64()
		cfg.PowerIntensity = 0.95 + 0.1*rng.Float64()
		cfg.Seed = seed

		busy := 0.3 + 0.6*rng.Float64()
		shape := cfg.Shape()
		rate := busy * float64(cfg.Servers()) / shape.MeanServiceSec
		rates := make([]float64, 20)
		for i := range rates {
			rates[i] = rate * (0.5 + rng.Float64())
		}
		plan := trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 1 + rng.Intn(32)}

		eng := sim.New(seed)
		row := cluster.MustRow(eng, cfg, &randomCtrl{rng: rand.New(rand.NewSource(seed + 1))})
		m := row.Run(plan)

		arrived := m.Arrived[workload.Low] + m.Arrived[workload.High]
		completed := m.Completed[workload.Low] + m.Completed[workload.High]
		dropped := m.Dropped[workload.Low] + m.Dropped[workload.High]
		// The run drains after the horizon, so everything admitted should
		// complete; anything shed is counted.
		if completed+dropped != arrived {
			t.Logf("seed %d: conservation violated: %d completed + %d dropped != %d arrived",
				seed, completed, dropped, arrived)
			return false
		}
		// Physical power envelope: between all-idle (with slack for the
		// intensity factor scaling idle GPU power) and an absolute ceiling.
		floor := float64(cfg.Servers()) * cfg.IdleServerWatts() / cfg.ProvisionedWatts() * 0.9
		ceiling := float64(cfg.Servers()) * 7000 / cfg.ProvisionedWatts()
		for _, u := range m.Util.Values {
			if u < floor || u > ceiling {
				t.Logf("seed %d: utilization %v outside [%v, %v]", seed, u, floor, ceiling)
				return false
			}
		}
		// Latency sanity: positive, and bounded (buffer cap + brakes give a
		// generous ceiling of an hour for these tiny rows).
		for _, pri := range []workload.Priority{workload.Low, workload.High} {
			for _, l := range m.LatencySec[pri] {
				if l <= 0 || l > 3600 {
					t.Logf("seed %d: latency %v out of range", seed, l)
					return false
				}
			}
		}
		if m.BrakeEvents < 0 || m.LockCommands < 0 || m.FailedCommands < 0 || m.FailedCommands > m.LockCommands {
			t.Logf("seed %d: counter inconsistency %+v", seed, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestBusyConservation checks Little's-law-scale accounting: total busy
// time ≈ completed × mean service time.
func TestBusyConservation(t *testing.T) {
	cfg := cluster.Production()
	cfg.BaseServers = 8
	eng := sim.New(77)
	shape := cfg.Shape()
	rate := 0.5 * float64(cfg.Servers()) / shape.MeanServiceSec
	rates := make([]float64, 120)
	for i := range rates {
		rates[i] = rate
	}
	row := cluster.MustRow(eng, cfg, &recordingCtrl{})
	m := row.Run(trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32})

	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		if m.Completed[pri] == 0 {
			t.Fatalf("%v: no completions", pri)
		}
		meanService := m.BusySec[pri] / float64(m.Completed[pri])
		want := cfg.MeanServiceSeconds(pri)
		if meanService < 0.8*want || meanService > 1.2*want {
			t.Errorf("%v: realized mean service %.1fs vs modelled %.1fs", pri, meanService, want)
		}
	}
}

// TestLatencyIncludesQueueing verifies end-to-end latency is never below
// pure execution time and grows under load.
func TestLatencyIncludesQueueing(t *testing.T) {
	run := func(busy float64) float64 {
		cfg := cluster.Production()
		cfg.BaseServers = 6
		eng := sim.New(3)
		shape := cfg.Shape()
		rate := busy * float64(cfg.Servers()) / shape.MeanServiceSec
		rates := make([]float64, 60)
		for i := range rates {
			rates[i] = rate
		}
		row := cluster.MustRow(eng, cfg, &recordingCtrl{})
		m := row.Run(trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32})
		return stats.Percentile(m.LatencySec[workload.High], 95)
	}
	light := run(0.3)
	heavy := run(0.9)
	if heavy <= light {
		t.Errorf("p95 latency should grow with load: %.1f vs %.1f", light, heavy)
	}
}
