package cluster_test

import (
	"bytes"
	"strings"
	"testing"

	"polca/internal/cluster"
)

// FuzzLoadRequestsCSV ensures the trace parser never panics and that every
// successfully parsed trace survives a save/load round trip.
func FuzzLoadRequestsCSV(f *testing.F) {
	f.Add("arrival_sec,class,priority,input_tokens,output_tokens\n1.0,chat,low,2048,128\n")
	f.Add("arrival_sec,class,priority,input_tokens,output_tokens\n0.5,search,high,512,1024\n2.0,summarize,low,4096,256\n")
	f.Add("")
	f.Add("garbage")
	f.Add("a,b,c,d,e\n-1,x,low,1,1\n")
	f.Add("arrival_sec,class,priority,input_tokens,output_tokens\n1e309,chat,low,1,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		reqs, err := cluster.LoadRequestsCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Loaded traces are sorted and well-formed.
		for i, r := range reqs {
			if r.Input <= 0 || r.Output < 0 {
				t.Fatalf("accepted malformed request %+v", r)
			}
			if i > 0 && r.Arrival < reqs[i-1].Arrival {
				t.Fatal("accepted trace not sorted")
			}
		}
		// Round trip: save and reload yields the same requests.
		var buf bytes.Buffer
		if err := cluster.SaveRequestsCSV(&buf, reqs); err != nil {
			t.Fatalf("save of accepted trace failed: %v", err)
		}
		again, err := cluster.LoadRequestsCSV(&buf)
		if err != nil {
			t.Fatalf("reload of saved trace failed: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(reqs))
		}
	})
}
