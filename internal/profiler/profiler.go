// Package profiler implements the paper's server-level characterization
// methodology (§3.4): it executes inference and training plans on modelled
// GPUs, records DCGM-style counter timelines, and derives the power/
// performance measurements behind Figures 4-10 — power timeseries, peak and
// mean power per configuration, frequency and power-cap sweeps, and the
// counter correlation matrices of Figure 7.
package profiler

import (
	"fmt"
	"math/rand"
	"time"

	"polca/internal/gpu"
	"polca/internal/plan"
	"polca/internal/stats"
	"polca/internal/telemetry"
)

// DCGMInterval is the sampling interval used for all profiling, matching
// the paper's monitoring configuration.
const DCGMInterval = 100 * time.Millisecond

// Knob is a power-management setting applied to the device before a run.
type Knob struct {
	// LockClockMHz locks the SM clock when non-zero (frequency locking).
	LockClockMHz float64
	// PowerCapWatts sets the reactive cap when non-zero (power capping).
	PowerCapWatts float64
}

// Apply configures the device. A zero Knob restores defaults.
func (k Knob) Apply(d *gpu.Device) {
	d.LockClock(k.LockClockMHz)
	if k.PowerCapWatts > 0 {
		d.SetPowerCap(k.PowerCapWatts)
	} else {
		d.SetPowerCap(d.Spec().TDPWatts)
	}
}

// String describes the knob the way the paper labels its figures.
func (k Knob) String() string {
	switch {
	case k.LockClockMHz > 0 && k.PowerCapWatts > 0:
		return fmt.Sprintf("%.0fMHz+%.0fW", k.LockClockMHz, k.PowerCapWatts)
	case k.LockClockMHz > 0:
		return fmt.Sprintf("%.1fGHz", k.LockClockMHz/1000)
	case k.PowerCapWatts > 0:
		return fmt.Sprintf("%.0fW cap", k.PowerCapWatts)
	}
	return "No cap"
}

// PhaseSpan marks where a request phase landed on the recorded timeline.
type PhaseSpan struct {
	Name     string // "prompt" or "token"
	Request  int
	From, To time.Duration
}

// InferenceRun is a recorded profiling session of repeated inferences.
type InferenceRun struct {
	Config    plan.InferenceConfig
	Timeline  *telemetry.Timeline
	Latencies []time.Duration // per measured request, end-to-end
	Spans     []PhaseSpan     // measured requests only
	Spec      gpu.Spec
}

// RunInference executes warmup+n back-to-back requests of the given
// configuration on a fresh device with the knob applied, waiting gap
// between requests. Following the paper's methodology, warmup requests
// (the first of which pays a workspace-allocation penalty) are executed
// but not recorded in latencies or spans — though they do appear on the
// timeline, exactly as a DCGM trace would show them.
func RunInference(cfg plan.InferenceConfig, knob Knob, warmup, n int, gap time.Duration) (InferenceRun, error) {
	p, err := plan.NewInference(cfg)
	if err != nil {
		return InferenceRun{}, err
	}
	spec := gpu.A100SXM80GB()
	dev := gpu.NewDevice(spec)
	dev.SetMemUsedGB(p.MemUsedGB)
	knob.Apply(dev)

	run := InferenceRun{Config: p.Config, Spec: spec, Timeline: telemetry.NewTimeline(idleOf(dev))}
	for i := 0; i < warmup+n; i++ {
		measured := i >= warmup
		req := i - warmup
		prompt := p.Prompt
		if i == 0 {
			// Workspace allocation makes the first request much slower.
			prompt.OverheadSeconds += 0.25 * (p.Prompt.OverheadSeconds + p.Token.OverheadSeconds + 0.2)
		}
		start := run.Timeline.End()
		pe := dev.Run(prompt)
		end, err := run.Timeline.Append(start, pe)
		if err != nil {
			return InferenceRun{}, err
		}
		if measured {
			run.Spans = append(run.Spans, PhaseSpan{Name: "prompt", Request: req, From: start, To: end})
		}
		var te gpu.Exec
		if p.TokenSteps > 0 {
			te = dev.Run(p.Token)
			tstart := end
			end, err = run.Timeline.Append(end, te)
			if err != nil {
				return InferenceRun{}, err
			}
			if measured {
				run.Spans = append(run.Spans, PhaseSpan{Name: "token", Request: req, From: tstart, To: end})
			}
		}
		if measured {
			run.Latencies = append(run.Latencies, pe.Duration+te.Duration)
		}
		if gap > 0 {
			run.Timeline.AppendIdle(gap)
		}
	}
	return run, nil
}

// idleOf returns the idle counters for a device.
func idleOf(d *gpu.Device) gpu.Counters {
	return d.Idle(time.Second).Segments[0].Counters
}

// PowerSeries samples the run's power at the DCGM interval.
func (r InferenceRun) PowerSeries() stats.Series {
	return r.Timeline.SampleInstant(DCGMInterval, telemetry.Power)
}

// MeanLatency returns the mean measured request latency.
func (r InferenceRun) MeanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range r.Latencies {
		sum += l
	}
	return sum / time.Duration(len(r.Latencies))
}

// Measurement is one point of Figure 8: peak and mean power (fractions of
// TDP) during request execution plus the request latency.
type Measurement struct {
	Config    plan.InferenceConfig
	PeakTDP   float64 // peak instantaneous power / TDP
	MeanTDP   float64 // mean power across execution / TDP
	Latency   time.Duration
	TokensSec float64 // generated tokens per second (0 for encoders)
}

// MeasureInference profiles a single steady-state request under the knob
// on the paper's A100-80GB inference machine.
func MeasureInference(cfg plan.InferenceConfig, knob Knob) (Measurement, error) {
	return MeasureInferenceOn(gpu.A100SXM80GB(), cfg, knob)
}

// MeasureInferenceOn profiles a request on an arbitrary GPU SKU (e.g. the
// H100 forward-look of §4.2). The config's NVLinkGBps should match the
// SKU's interconnect when tensor parallelism is used.
func MeasureInferenceOn(spec gpu.Spec, cfg plan.InferenceConfig, knob Knob) (Measurement, error) {
	if cfg.NVLinkGBps == 0 {
		cfg.NVLinkGBps = spec.NVLinkGBps
	}
	p, err := plan.NewInference(cfg)
	if err != nil {
		return Measurement{}, err
	}
	dev := gpu.NewDevice(spec)
	dev.SetMemUsedGB(p.MemUsedGB)
	knob.Apply(dev)

	var total time.Duration
	var energy float64
	peak := 0.0
	for _, ph := range p.Phases() {
		e := dev.Run(ph)
		total += e.Duration
		energy += e.Energy()
		if pk := e.PeakPower(); pk > peak {
			peak = pk
		}
	}
	if total <= 0 {
		return Measurement{}, fmt.Errorf("profiler: empty execution for %s", cfg.Model.Name)
	}
	m := Measurement{
		Config:  p.Config,
		PeakTDP: peak / spec.TDPWatts,
		MeanTDP: energy / total.Seconds() / spec.TDPWatts,
		Latency: total,
	}
	if p.TokenSteps > 0 {
		m.TokensSec = float64(p.TokenSteps) / total.Seconds()
	}
	return m, nil
}

// SweepPoint is one point of a Figure 5/10-style sweep: reductions are
// relative to the uncapped run (positive = lower than baseline).
type SweepPoint struct {
	Knob               Knob
	PeakPowerReduction float64 // 1 - peak/basePeak
	PerfReduction      float64 // 1 - baseLatency/latency (throughput loss)
	Latency            time.Duration
	PeakTDP            float64
}

// FrequencySweep measures the peak-power/performance trade-off of locking
// the SM clock at each frequency (Figure 10).
func FrequencySweep(cfg plan.InferenceConfig, clocksMHz []float64) ([]SweepPoint, error) {
	base, err := MeasureInference(cfg, Knob{})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(clocksMHz))
	for _, mhz := range clocksMHz {
		m, err := MeasureInference(cfg, Knob{LockClockMHz: mhz})
		if err != nil {
			return nil, err
		}
		out = append(out, sweepPoint(Knob{LockClockMHz: mhz}, base, m))
	}
	return out, nil
}

// PowerCapSweep measures the trade-off of reactive power caps.
func PowerCapSweep(cfg plan.InferenceConfig, capsWatts []float64) ([]SweepPoint, error) {
	base, err := MeasureInference(cfg, Knob{})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(capsWatts))
	for _, w := range capsWatts {
		m, err := MeasureInference(cfg, Knob{PowerCapWatts: w})
		if err != nil {
			return nil, err
		}
		out = append(out, sweepPoint(Knob{PowerCapWatts: w}, base, m))
	}
	return out, nil
}

func sweepPoint(k Knob, base, m Measurement) SweepPoint {
	return SweepPoint{
		Knob:               k,
		PeakPowerReduction: 1 - m.PeakTDP/base.PeakTDP,
		PerfReduction:      1 - base.Latency.Seconds()/m.Latency.Seconds(),
		Latency:            m.Latency,
		PeakTDP:            m.PeakTDP,
	}
}

// TrainingRun is a recorded profiling session of training iterations.
type TrainingRun struct {
	Config      plan.TrainingConfig
	Timeline    *telemetry.Timeline
	IterSeconds float64 // mean measured iteration time
	PeakWatts   float64
	TroughWatts float64 // minimum power across the sync phases
	Spec        gpu.Spec
}

// RunTraining executes n training iterations under the knob on a fresh
// device (the paper's 40 GB training machine) and records the timeline.
func RunTraining(cfg plan.TrainingConfig, knob Knob, n int) (TrainingRun, error) {
	tr, err := plan.NewTraining(cfg)
	if err != nil {
		return TrainingRun{}, err
	}
	spec := gpu.A100SXM40GB()
	dev := gpu.NewDevice(spec)
	dev.SetMemUsedGB(0.85 * spec.MemoryGB) // paper: batch sized to ~85% memory
	knob.Apply(dev)

	run := TrainingRun{Config: cfg, Spec: spec, Timeline: telemetry.NewTimeline(idleOf(dev))}
	run.TroughWatts = spec.TDPWatts * 10
	var total time.Duration
	var allSegs []gpu.Segment
	for i := 0; i < n; i++ {
		for _, ph := range tr.Phases() {
			e := dev.Run(ph)
			total += e.Duration
			if _, err := run.Timeline.Append(run.Timeline.End(), e); err != nil {
				return TrainingRun{}, err
			}
			allSegs = append(allSegs, e.Segments...)
			if ph.Name == "sync" {
				if p := e.MeanPower(); p < run.TroughWatts {
					run.TroughWatts = p
				}
			}
		}
	}
	// Peak is the *sustained* peak across the run: capped phases overshoot
	// only for the limiter's reaction interval, and training phases are
	// long, so the level a power trace shows (Figure 4) is the
	// post-throttle one. Sub-reaction transients are ignored unless the
	// run contains nothing longer.
	run.PeakWatts = sustainedPeak(gpu.Exec{Segments: allSegs}, spec.CapReactionInterval*3/2)
	if n > 0 {
		run.IterSeconds = total.Seconds() / float64(n)
	}
	return run, nil
}

// sustainedPeak returns the maximum power among segments lasting at least
// minDur, falling back to the overall maximum when none qualify.
func sustainedPeak(e gpu.Exec, minDur time.Duration) float64 {
	peak, any := 0.0, false
	for _, s := range e.Segments {
		if s.Duration >= minDur {
			any = true
			if s.Counters.PowerWatts > peak {
				peak = s.Counters.PowerWatts
			}
		}
	}
	if !any {
		return e.PeakPower()
	}
	return peak
}

// TrainingSweepPoint is one point of Figure 5.
type TrainingSweepPoint struct {
	Knob               Knob
	PeakPowerReduction float64
	PerfReduction      float64 // throughput (iterations/s) loss
}

// TrainingFrequencySweep measures Figure 5a for one training profile.
func TrainingFrequencySweep(cfg plan.TrainingConfig, clocksMHz []float64) ([]TrainingSweepPoint, error) {
	return trainingSweep(cfg, knobsFromClocks(clocksMHz))
}

// TrainingPowerCapSweep measures Figure 5b for one training profile.
func TrainingPowerCapSweep(cfg plan.TrainingConfig, capsWatts []float64) ([]TrainingSweepPoint, error) {
	knobs := make([]Knob, len(capsWatts))
	for i, w := range capsWatts {
		knobs[i] = Knob{PowerCapWatts: w}
	}
	return trainingSweep(cfg, knobs)
}

func knobsFromClocks(clocksMHz []float64) []Knob {
	knobs := make([]Knob, len(clocksMHz))
	for i, c := range clocksMHz {
		knobs[i] = Knob{LockClockMHz: c}
	}
	return knobs
}

func trainingSweep(cfg plan.TrainingConfig, knobs []Knob) ([]TrainingSweepPoint, error) {
	base, err := RunTraining(cfg, Knob{}, 2)
	if err != nil {
		return nil, err
	}
	out := make([]TrainingSweepPoint, 0, len(knobs))
	for _, k := range knobs {
		r, err := RunTraining(cfg, k, 2)
		if err != nil {
			return nil, err
		}
		out = append(out, TrainingSweepPoint{
			Knob:               k,
			PeakPowerReduction: 1 - r.PeakWatts/base.PeakWatts,
			PerfReduction:      1 - base.IterSeconds/r.IterSeconds,
		})
	}
	return out, nil
}

// CorrMatrix is a labelled pairwise correlation matrix (Figure 7).
type CorrMatrix struct {
	Labels []string
	R      [][]float64 // R[i][j] = Pearson(counter i, counter j)
}

// At returns the correlation between the named counters.
func (m CorrMatrix) At(a, b string) (float64, error) {
	ai, bi := -1, -1
	for i, l := range m.Labels {
		if l == a {
			ai = i
		}
		if l == b {
			bi = i
		}
	}
	if ai < 0 || bi < 0 {
		return 0, fmt.Errorf("profiler: unknown counter %q/%q", a, b)
	}
	return m.R[ai][bi], nil
}

// counterSet lists the Figure 7 counters in display order.
var counterSet = []struct {
	label string
	sel   func(gpu.Counters) float64
}{
	{"power", telemetry.Power},
	{"gpu_util", telemetry.GPUUtil},
	{"mem_util", telemetry.MemUtil},
	{"sm_activity", telemetry.SMAct},
	{"tensor_activity", telemetry.TensorAct},
	{"mem_activity", telemetry.MemAct},
	{"pcie_tx", telemetry.PCIeTX},
	{"pcie_rx", telemetry.PCIeRX},
}

// CounterCorrelations reproduces Figure 7: it profiles repeated inferences
// of the configuration, splits the DCGM samples into prompt-phase and
// token-phase windows (widened by one sample on each side, as the paper's
// lag alignment effectively does), adds small measurement noise from the
// seeded source, and returns the two pairwise Pearson matrices.
func CounterCorrelations(cfg plan.InferenceConfig, requests int, seed int64) (prompt, token CorrMatrix, err error) {
	run, err := RunInference(cfg, Knob{}, 1, requests, 500*time.Millisecond)
	if err != nil {
		return CorrMatrix{}, CorrMatrix{}, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Sample every counter over the full run.
	series := make([][]float64, len(counterSet))
	horizon := run.Timeline.End()
	nSamples := int(horizon / DCGMInterval)
	for i, cs := range counterSet {
		s := run.Timeline.SampleInstantUntil(horizon, DCGMInterval, cs.sel)
		series[i] = s.Values
	}
	// Add ~1% relative measurement noise so flat stretches aren't degenerate.
	for i := range series {
		scale := stats.Max(series[i]) - stats.Min(series[i])
		if scale == 0 {
			scale = stats.Mean(series[i])
		}
		if scale == 0 {
			scale = 1
		}
		for j := range series[i] {
			series[i][j] += rng.NormFloat64() * 0.01 * scale
		}
	}

	// The prompt window is widened by one sample on each side — prompt
	// spikes are brief and the paper's lag alignment effectively captures
	// the surrounding transition samples. The token window is *shrunk* by
	// one sample so the steady plateau is measured without transitions.
	inPhase := func(name string, idx int, margin time.Duration) bool {
		ts := time.Duration(idx) * DCGMInterval
		for _, sp := range run.Spans {
			if sp.Name != name {
				continue
			}
			if ts >= sp.From-margin && ts < sp.To+margin {
				return true
			}
		}
		return false
	}
	var promptIdx, tokenIdx []int
	for i := 0; i < nSamples; i++ {
		if inPhase("prompt", i, DCGMInterval) {
			promptIdx = append(promptIdx, i)
		} else if inPhase("token", i, -DCGMInterval) {
			tokenIdx = append(tokenIdx, i)
		}
	}
	prompt = corrAt(series, promptIdx)
	token = corrAt(series, tokenIdx)
	return prompt, token, nil
}

// corrAt builds the pairwise correlation matrix over selected samples.
func corrAt(series [][]float64, idx []int) CorrMatrix {
	m := CorrMatrix{R: make([][]float64, len(counterSet))}
	for _, cs := range counterSet {
		m.Labels = append(m.Labels, cs.label)
	}
	sub := make([][]float64, len(series))
	for i := range series {
		sub[i] = make([]float64, len(idx))
		for j, k := range idx {
			sub[i][j] = series[i][k]
		}
	}
	for i := range sub {
		m.R[i] = make([]float64, len(sub))
		for j := range sub {
			if i == j {
				m.R[i][j] = 1
				continue
			}
			r, err := stats.Pearson(sub[i], sub[j])
			if err != nil {
				r = 0
			}
			m.R[i][j] = r
		}
	}
	return m
}
