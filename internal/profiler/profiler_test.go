package profiler

import (
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
)

func bloom(batch, in, out int) plan.InferenceConfig {
	return plan.InferenceConfig{
		Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16,
		BatchSize: batch, InputTokens: in, OutputTokens: out,
	}
}

func TestKnobString(t *testing.T) {
	cases := []struct {
		k    Knob
		want string
	}{
		{Knob{}, "No cap"},
		{Knob{LockClockMHz: 1100}, "1.1GHz"},
		{Knob{PowerCapWatts: 325}, "325W cap"},
		{Knob{LockClockMHz: 1100, PowerCapWatts: 325}, "1100MHz+325W"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Knob%+v.String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKnobApply(t *testing.T) {
	d := gpu.NewDevice(gpu.A100SXM80GB())
	Knob{LockClockMHz: 1110, PowerCapWatts: 325}.Apply(d)
	if d.LockedClock() != 1110 || d.PowerCap() != 325 {
		t.Error("knob did not apply")
	}
	Knob{}.Apply(d)
	if d.LockedClock() != 0 || d.PowerCap() != d.Spec().TDPWatts {
		t.Error("zero knob did not reset")
	}
}

func TestRunInferenceShape(t *testing.T) {
	run, err := RunInference(bloom(1, 2048, 128), Knob{}, 1, 3, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Latencies) != 3 {
		t.Fatalf("latencies = %d, want 3", len(run.Latencies))
	}
	if len(run.Spans) != 6 { // prompt+token per measured request
		t.Fatalf("spans = %d, want 6", len(run.Spans))
	}
	s := run.PowerSeries()
	if s.Len() == 0 {
		t.Fatal("empty power series")
	}
	// Figure 6 shape: peak at/above TDP, long plateau below it.
	tdp := run.Spec.TDPWatts
	if s.Peak() < tdp {
		t.Errorf("peak %v below TDP", s.Peak())
	}
	plateau := 0
	for _, v := range s.Values {
		if v > 0.55*tdp && v < 0.85*tdp {
			plateau++
		}
	}
	if frac := float64(plateau) / float64(s.Len()); frac < 0.4 {
		t.Errorf("token plateau fraction = %.2f, want the majority of samples", frac)
	}
}

func TestWarmupSlowerThanSteadyState(t *testing.T) {
	// Capture the warm-up effect by comparing a run that measures the very
	// first request against one that warms up first.
	cold, err := RunInference(bloom(1, 1024, 32), Knob{}, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunInference(bloom(1, 1024, 32), Knob{}, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Latencies[0] <= warm.Latencies[0] {
		t.Errorf("first request (%v) should be slower than steady state (%v)", cold.Latencies[0], warm.Latencies[0])
	}
}

func TestRunInferencePropagatesError(t *testing.T) {
	if _, err := RunInference(plan.InferenceConfig{}, Knob{}, 0, 1, 0); err == nil {
		t.Error("want error for empty config")
	}
	if _, err := MeasureInference(plan.InferenceConfig{}, Knob{}); err == nil {
		t.Error("want error for empty config")
	}
}

func TestMeasurementFigure8Shapes(t *testing.T) {
	// Peak power rises with input size; mean stays comparatively flat.
	var peaks, means []float64
	for _, in := range []int{256, 1024, 4096, 8192} {
		m, err := MeasureInference(bloom(1, in, 128), Knob{})
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, m.PeakTDP)
		means = append(means, m.MeanTDP)
	}
	if !(peaks[3] > peaks[0]) {
		t.Errorf("peak did not rise with input: %v", peaks)
	}
	if growth := peaks[3] - peaks[0]; growth < 0.1 {
		t.Errorf("peak growth %v too small (Figure 8a shows drastic increase)", growth)
	}
	if spread := means[3] - means[0]; spread > 0.15 {
		t.Errorf("mean power moved %v across inputs, want stable", spread)
	}
	// Latency ~linear in output size.
	m128, _ := MeasureInference(bloom(1, 1024, 128), Knob{})
	m512, _ := MeasureInference(bloom(1, 1024, 512), Knob{})
	if r := m512.Latency.Seconds() / m128.Latency.Seconds(); r < 3 || r > 5 {
		t.Errorf("latency ratio for 4x output = %.2f, want ~4", r)
	}
	if m128.TokensSec <= 0 {
		t.Error("tokens/sec not reported")
	}
}

func TestFrequencySweepSuperlinear(t *testing.T) {
	// Figure 10a: significant power (up to 20%) reclaimed for minimal
	// performance loss (up to 7%).
	pts, err := FrequencySweep(bloom(1, 2048, 256), []float64{1400, 1350, 1300, 1250, 1200, 1150, 1100})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.PeakPowerReduction < p.PerfReduction-0.01 {
			t.Errorf("at %v: power reduction %.3f below perf reduction %.3f (should be superlinear)",
				p.Knob, p.PeakPowerReduction, p.PerfReduction)
		}
	}
	last := pts[len(pts)-1]
	if last.PeakPowerReduction < 0.12 {
		t.Errorf("1.1GHz reclaims only %.3f peak power, want >= 0.12", last.PeakPowerReduction)
	}
	if last.PerfReduction > 0.10 {
		t.Errorf("1.1GHz costs %.3f performance, want <= 0.10", last.PerfReduction)
	}
	// Figure 10c: less than 2% perf drop ~100 MHz below max.
	for _, p := range pts {
		if p.Knob.LockClockMHz == 1300 && p.PerfReduction > 0.02 {
			t.Errorf("1.3GHz perf drop = %.3f, want < 0.02", p.PerfReduction)
		}
	}
}

func TestSmallerBatchLowerPerfLoss(t *testing.T) {
	// Figure 10b: smaller batches show lower performance loss at the same
	// peak power reduction.
	small, err := FrequencySweep(bloom(1, 512, 256), []float64{1100})
	if err != nil {
		t.Fatal(err)
	}
	big, err := FrequencySweep(bloom(16, 512, 256), []float64{1100})
	if err != nil {
		t.Fatal(err)
	}
	if small[0].PerfReduction >= big[0].PerfReduction {
		t.Errorf("batch 1 perf loss %.3f should be below batch 16 loss %.3f",
			small[0].PerfReduction, big[0].PerfReduction)
	}
}

func TestPowerCapSweepReactive(t *testing.T) {
	pts, err := PowerCapSweep(bloom(1, 8192, 128), []float64{390, 360, 325, 300})
	if err != nil {
		t.Fatal(err)
	}
	// Reactive capping lets spikes through: even at a 300 W cap the peak
	// stays near TDP (Figure 9b), so peak-power reduction is modest.
	for _, p := range pts {
		if p.PeakPowerReduction > 0.15 {
			t.Errorf("cap %v reduced recorded peak by %.2f; reactive caps should overshoot on prompt spikes",
				p.Knob, p.PeakPowerReduction)
		}
	}
}

func TestRunTraining(t *testing.T) {
	for _, cfg := range plan.TrainingProfiles() {
		run, err := RunTraining(cfg, Knob{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if run.IterSeconds <= 0 {
			t.Fatalf("%s: no iterations recorded", cfg.Model.Name)
		}
		if run.PeakWatts <= run.TroughWatts {
			t.Errorf("%s: peak %v <= trough %v", cfg.Model.Name, run.PeakWatts, run.TroughWatts)
		}
		// Figure 4: per-iteration swings are big for all three models.
		swing := (run.PeakWatts - run.TroughWatts) / run.Spec.TDPWatts
		if swing < 0.15 {
			t.Errorf("%s: swing = %.2f TDP, want >= 0.15", cfg.Model.Name, swing)
		}
	}
}

func TestTrainingCappingVsLocking(t *testing.T) {
	// Insight 3: power capping clips peaks while keeping troughs (reducing
	// swing); frequency locking lowers the whole curve.
	cfg := plan.TrainingProfiles()[1] // GPT-NeoX
	base, err := RunTraining(cfg, Knob{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunTraining(cfg, Knob{PowerCapWatts: 325}, 2)
	if err != nil {
		t.Fatal(err)
	}
	locked, err := RunTraining(cfg, Knob{LockClockMHz: 1100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseSwing := base.PeakWatts - base.TroughWatts
	cappedSwing := capped.PeakWatts - capped.TroughWatts
	if cappedSwing >= baseSwing {
		t.Errorf("capping should shrink the swing: %v vs %v", cappedSwing, baseSwing)
	}
	if capped.TroughWatts < base.TroughWatts-5 {
		t.Errorf("capping should not depress troughs: %v vs %v", capped.TroughWatts, base.TroughWatts)
	}
	if locked.PeakWatts >= base.PeakWatts {
		t.Error("locking should lower peak power")
	}
	// Both reduce peak by up to ~20% (paper) — at least 10% here.
	if red := 1 - locked.PeakWatts/base.PeakWatts; red < 0.10 {
		t.Errorf("1.1GHz lock peak reduction = %.2f, want >= 0.10", red)
	}
}

func TestTrainingSweeps(t *testing.T) {
	cfg := plan.TrainingProfiles()[0]
	fs, err := TrainingFrequencySweep(cfg, []float64{1400, 1250, 1100})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("sweep points = %d", len(fs))
	}
	// Lower clocks reclaim more power.
	if !(fs[2].PeakPowerReduction > fs[0].PeakPowerReduction) {
		t.Errorf("power reduction not monotone: %+v", fs)
	}
	ps, err := TrainingPowerCapSweep(cfg, []float64{400, 350, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("cap sweep points = %d", len(ps))
	}
}

func TestCounterCorrelationsFigure7(t *testing.T) {
	prompt, token, err := CounterCorrelations(bloom(1, 4096, 64), 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Prompt phase: power strongly correlated with SM and tensor activity,
	// inversely with memory activity.
	pSM, err := prompt.At("power", "sm_activity")
	if err != nil {
		t.Fatal(err)
	}
	pTensor, _ := prompt.At("power", "tensor_activity")
	pMem, _ := prompt.At("power", "mem_activity")
	if pSM < 0.5 {
		t.Errorf("prompt power~sm = %.2f, want strong positive", pSM)
	}
	if pTensor < 0.5 {
		t.Errorf("prompt power~tensor = %.2f, want strong positive", pTensor)
	}
	if pMem > 0 {
		t.Errorf("prompt power~mem_activity = %.2f, want negative (Figure 7)", pMem)
	}
	// Token phase: correlations generally weak.
	tSM, _ := token.At("power", "sm_activity")
	tTensor, _ := token.At("power", "tensor_activity")
	if tSM > 0.6 || tTensor > 0.6 {
		t.Errorf("token correlations too strong: sm=%.2f tensor=%.2f (want weak)", tSM, tTensor)
	}
	// Diagonal is 1; matrix is symmetric-ish.
	if d, _ := prompt.At("power", "power"); d != 1 {
		t.Errorf("diagonal = %v", d)
	}
	if _, err := prompt.At("nope", "power"); err == nil {
		t.Error("unknown label should error")
	}
}

func TestCorrelationsDeterministic(t *testing.T) {
	a1, _, err := CounterCorrelations(bloom(1, 2048, 32), 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := CounterCorrelations(bloom(1, 2048, 32), 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.R {
		for j := range a1.R[i] {
			if a1.R[i][j] != a2.R[i][j] {
				t.Fatal("correlations not deterministic for equal seeds")
			}
		}
	}
}
