package disagg

import (
	"testing"

	"polca/internal/llm"
	"polca/internal/plan"
)

func bloomCfg() plan.InferenceConfig {
	return plan.InferenceConfig{
		Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16,
		BatchSize: 1, InputTokens: 2048, OutputTokens: 512,
	}
}

func TestPolicyString(t *testing.T) {
	if got := (PhasePolicy{}).String(); got != "prompt=boost/token=boost" {
		t.Errorf("String = %q", got)
	}
	if got := TokenOnly(1110).String(); got != "prompt=boost/token=1110MHz" {
		t.Errorf("String = %q", got)
	}
	if Uniform(1110).PromptClockMHz != 1110 || Uniform(1110).TokenClockMHz != 1110 {
		t.Error("Uniform wrong")
	}
}

func TestEvaluatePhasePolicy(t *testing.T) {
	rep, err := EvaluatePhasePolicy(bloomCfg(), PhasePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency <= 0 || rep.PeakWatts <= rep.TokenWatts {
		t.Errorf("implausible report %+v", rep)
	}
	if rep.PromptWatts <= rep.TokenWatts {
		t.Error("prompt phase should draw more power than token phase")
	}
	if _, err := EvaluatePhasePolicy(plan.InferenceConfig{}, PhasePolicy{}); err == nil {
		t.Error("want error for empty config")
	}
}

func TestPhaseAwareRecoversPromptLatency(t *testing.T) {
	// §5.2: lower frequencies during the token phase reduce power without
	// substantially impacting performance — and without the prompt-phase
	// slowdown the uniform lock pays.
	cmp, err := ComparePhaseAware(bloomCfg(), 1110)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PhaseAwareSavings < 0.05 {
		t.Errorf("phase-aware savings = %.3f, want >= 5%%", cmp.PhaseAwareSavings)
	}
	if cmp.PhaseAwareSlowdown > 0.06 {
		t.Errorf("phase-aware slowdown = %.3f, want small", cmp.PhaseAwareSlowdown)
	}
	// The phase-aware policy must be no slower than the uniform lock and
	// recover some of its prompt-phase slowdown.
	if cmp.PhaseAware.Latency > cmp.UniformLow.Latency {
		t.Error("phase-aware policy slower than uniform lock")
	}
	if cmp.RecoveredLatency <= 0 {
		t.Errorf("recovered latency = %.3f, want positive", cmp.RecoveredLatency)
	}
	// Its peak power equals the prompt spike (uncapped prompts).
	if cmp.PhaseAware.PeakWatts < cmp.UniformLow.PeakWatts {
		t.Error("phase-aware peak should be the uncapped prompt spike")
	}
	// Token-phase power matches the uniform policy's.
	diff := cmp.PhaseAware.TokenWatts - cmp.UniformLow.TokenWatts
	if diff > 1 || diff < -1 {
		t.Errorf("token-phase power differs: %v vs %v", cmp.PhaseAware.TokenWatts, cmp.UniformLow.TokenWatts)
	}
}

func TestPhaseAwareMonotoneInClock(t *testing.T) {
	prev := -1.0
	for _, mhz := range []float64{1305, 1200, 1110, 1000} {
		cmp, err := ComparePhaseAware(bloomCfg(), mhz)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.PhaseAwareSavings < prev {
			t.Fatalf("savings not monotone in down-clocking at %v MHz", mhz)
		}
		prev = cmp.PhaseAwareSavings
	}
}

func TestEvaluateSplit(t *testing.T) {
	rep, err := EvaluateSplit(SplitConfig{
		Workload:         bloomCfg(),
		TokenClockMHz:    1110,
		InterconnectGBps: 25, // 200 Gb/s InfiniBand
	})
	if err != nil {
		t.Fatal(err)
	}
	// Token phases dominate request time: the token pool must be larger.
	if rep.PoolRatio < 2 {
		t.Errorf("pool ratio = %.1f, want token-heavy (Figure 6 phase times)", rep.PoolRatio)
	}
	// The KV handoff is affordable on InfiniBand (paper's premise).
	if rep.TransferSeconds > 0.2*rep.TokenSeconds {
		t.Errorf("transfer %.2fs too large vs token time %.2fs", rep.TransferSeconds, rep.TokenSeconds)
	}
	if rep.LatencyOverhead > 0.08 {
		t.Errorf("latency overhead = %.3f, want < 8%%", rep.LatencyOverhead)
	}
	// Fleet power drops: most machines are down-clocked token servers.
	if rep.PowerSavings < 0.05 {
		t.Errorf("fleet power savings = %.3f, want >= 5%%", rep.PowerSavings)
	}
}

func TestEvaluateSplitErrors(t *testing.T) {
	if _, err := EvaluateSplit(SplitConfig{Workload: bloomCfg()}); err == nil {
		t.Error("want error for zero interconnect bandwidth")
	}
	enc := plan.InferenceConfig{
		Model: llm.MustByName("RoBERTa-355M"), DType: llm.FP16,
		BatchSize: 1, InputTokens: 512, OutputTokens: 0,
	}
	if _, err := EvaluateSplit(SplitConfig{Workload: enc, InterconnectGBps: 25}); err == nil {
		t.Error("want error for encoder-only workload")
	}
	if _, err := EvaluateSplit(SplitConfig{Workload: plan.InferenceConfig{}, InterconnectGBps: 25}); err == nil {
		t.Error("want error for empty workload")
	}
}

func TestSplitFasterInterconnectHelps(t *testing.T) {
	slow, err := EvaluateSplit(SplitConfig{Workload: bloomCfg(), TokenClockMHz: 1110, InterconnectGBps: 5})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := EvaluateSplit(SplitConfig{Workload: bloomCfg(), TokenClockMHz: 1110, InterconnectGBps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Latency >= slow.Latency {
		t.Error("faster interconnect should cut the handoff latency")
	}
}
