// Package disagg implements the phase-aware power management extensions
// the paper proposes for LLM inference clusters (§5.2):
//
//   - Phase-aware frequency scaling: run the compute-bound prompt phase at
//     full clocks and drop the SM clock for the memory-bound token phase,
//     reclaiming power with little performance loss.
//   - Prompt/token disaggregation ("phase splitting", the paper cites its
//     companion Splitwise work): serve prompt and token phases on separate
//     GPU pools so that only the token pool needs to be power-capped, and
//     size the pools to the workload's phase-time ratio.
//
// Both are evaluated analytically against the same GPU and plan models the
// main characterization uses, so their savings are directly comparable to
// Figures 6-10.
package disagg

import (
	"fmt"
	"math"
	"time"

	"polca/internal/gpu"
	"polca/internal/plan"
)

// PhasePolicy assigns an SM clock per inference phase.
type PhasePolicy struct {
	// PromptClockMHz is the SM lock during prompt processing (0 = boost).
	PromptClockMHz float64
	// TokenClockMHz is the SM lock during token sampling (0 = boost).
	TokenClockMHz float64
}

// Uniform returns a policy locking both phases to the same clock, the
// baseline POLCA applies today.
func Uniform(mhz float64) PhasePolicy {
	return PhasePolicy{PromptClockMHz: mhz, TokenClockMHz: mhz}
}

// TokenOnly returns the paper's suggested phase-aware policy: full-speed
// prompts, down-clocked token sampling.
func TokenOnly(mhz float64) PhasePolicy {
	return PhasePolicy{TokenClockMHz: mhz}
}

// String labels the policy.
func (p PhasePolicy) String() string {
	f := func(mhz float64) string {
		if mhz == 0 {
			return "boost"
		}
		return fmt.Sprintf("%.0fMHz", mhz)
	}
	return fmt.Sprintf("prompt=%s/token=%s", f(p.PromptClockMHz), f(p.TokenClockMHz))
}

// PhaseReport quantifies one policy on one workload.
type PhaseReport struct {
	Policy      PhasePolicy
	Latency     time.Duration
	PeakWatts   float64 // per GPU
	MeanWatts   float64 // per GPU, time-weighted over the request
	EnergyJ     float64 // per GPU
	PromptWatts float64
	TokenWatts  float64
}

// EvaluatePhasePolicy executes an inference plan under per-phase clocks.
func EvaluatePhasePolicy(cfg plan.InferenceConfig, pol PhasePolicy) (PhaseReport, error) {
	p, err := plan.NewInference(cfg)
	if err != nil {
		return PhaseReport{}, err
	}
	dev := gpu.NewDevice(gpu.A100SXM80GB())

	dev.LockClock(pol.PromptClockMHz)
	pe := dev.Run(p.Prompt)

	var te gpu.Exec
	if p.TokenSteps > 0 {
		dev.LockClock(pol.TokenClockMHz)
		te = dev.Run(p.Token)
	}

	total := pe.Duration + te.Duration
	energy := pe.Energy() + te.Energy()
	rep := PhaseReport{
		Policy:      pol,
		Latency:     total,
		PeakWatts:   math.Max(pe.PeakPower(), te.PeakPower()),
		PromptWatts: pe.MeanPower(),
		TokenWatts:  te.MeanPower(),
		EnergyJ:     energy,
	}
	if total > 0 {
		rep.MeanWatts = energy / total.Seconds()
	}
	return rep, nil
}

// PhaseComparison contrasts phase-aware scaling against the uniform
// alternatives on one workload.
type PhaseComparison struct {
	Baseline   PhaseReport // no capping at all
	UniformLow PhaseReport // both phases at the low clock
	PhaseAware PhaseReport // prompt at boost, tokens at the low clock

	// PhaseAwareSavings is mean power saved vs baseline.
	PhaseAwareSavings float64
	// PhaseAwareSlowdown is latency stretch vs baseline.
	PhaseAwareSlowdown float64
	// RecoveredLatency is how much of the uniform policy's slowdown the
	// phase-aware policy wins back (1 = all of it).
	RecoveredLatency float64
}

// ComparePhaseAware evaluates the three policies at the given token clock.
func ComparePhaseAware(cfg plan.InferenceConfig, tokenClockMHz float64) (PhaseComparison, error) {
	base, err := EvaluatePhasePolicy(cfg, PhasePolicy{})
	if err != nil {
		return PhaseComparison{}, err
	}
	uni, err := EvaluatePhasePolicy(cfg, Uniform(tokenClockMHz))
	if err != nil {
		return PhaseComparison{}, err
	}
	aware, err := EvaluatePhasePolicy(cfg, TokenOnly(tokenClockMHz))
	if err != nil {
		return PhaseComparison{}, err
	}
	cmp := PhaseComparison{Baseline: base, UniformLow: uni, PhaseAware: aware}
	if base.MeanWatts > 0 {
		cmp.PhaseAwareSavings = 1 - aware.MeanWatts/base.MeanWatts
	}
	if base.Latency > 0 {
		cmp.PhaseAwareSlowdown = float64(aware.Latency)/float64(base.Latency) - 1
	}
	uniSlow := float64(uni.Latency) - float64(base.Latency)
	if uniSlow > 0 {
		cmp.RecoveredLatency = (float64(uni.Latency) - float64(aware.Latency)) / uniSlow
	}
	return cmp, nil
}

// SplitConfig describes a disaggregated serving deployment: dedicated
// prompt machines feed dedicated token machines, transferring the KV cache
// over the cluster interconnect between phases.
type SplitConfig struct {
	Workload plan.InferenceConfig
	// TokenClockMHz locks the token pool's clocks (prompt pool boosts).
	TokenClockMHz float64
	// InterconnectGBps is the prompt->token KV-cache transfer bandwidth
	// per server (the paper notes LLM clusters have high-bandwidth
	// InfiniBand that makes the transfer affordable).
	InterconnectGBps float64
}

// SplitReport sizes and evaluates a disaggregated deployment.
type SplitReport struct {
	Config SplitConfig

	PromptSeconds   float64 // per request, on the prompt pool
	TransferSeconds float64 // KV-cache handoff
	TokenSeconds    float64 // per request, on the token pool

	// PoolRatio is token-pool machines per prompt-pool machine needed to
	// keep both pools equally utilized.
	PoolRatio float64

	// Latency is the end-to-end request latency including the handoff.
	Latency time.Duration
	// LatencyOverhead is the stretch vs a colocated uncapped deployment.
	LatencyOverhead float64

	// FleetMeanWatts is the utilization-weighted mean per-GPU power across
	// both pools; FleetBaseWatts is the colocated equivalent.
	FleetMeanWatts float64
	FleetBaseWatts float64
	// PowerSavings is the fleet-level mean power reduction.
	PowerSavings float64
}

// EvaluateSplit analyzes a disaggregated deployment of the workload.
func EvaluateSplit(cfg SplitConfig) (SplitReport, error) {
	if cfg.InterconnectGBps <= 0 {
		return SplitReport{}, fmt.Errorf("disagg: non-positive interconnect bandwidth")
	}
	p, err := plan.NewInference(cfg.Workload)
	if err != nil {
		return SplitReport{}, err
	}
	if p.TokenSteps == 0 {
		return SplitReport{}, fmt.Errorf("disagg: %s has no token phase to split", cfg.Workload.Model.Name)
	}

	promptDev := gpu.NewDevice(gpu.A100SXM80GB())
	pe := promptDev.Run(p.Prompt)

	tokenDev := gpu.NewDevice(gpu.A100SXM80GB())
	tokenDev.LockClock(cfg.TokenClockMHz)
	te := tokenDev.Run(p.Token)

	// KV cache produced by the prompt phase must move pools.
	m := cfg.Workload.Model
	kvBytes := m.KVBytesPerToken(cfg.Workload.DType) *
		float64(cfg.Workload.BatchSize) * float64(cfg.Workload.InputTokens)
	transfer := kvBytes / (cfg.InterconnectGBps * 1e9)

	// Colocated uncapped baseline.
	baseDev := gpu.NewDevice(gpu.A100SXM80GB())
	bp := baseDev.Run(p.Prompt)
	bt := baseDev.Run(p.Token)
	baseLatency := bp.Duration + bt.Duration
	baseEnergy := bp.Energy() + bt.Energy()

	rep := SplitReport{
		Config:          cfg,
		PromptSeconds:   pe.Duration.Seconds(),
		TransferSeconds: transfer,
		TokenSeconds:    te.Duration.Seconds(),
		Latency:         pe.Duration + te.Duration + secToDur(transfer),
	}
	if pe.Duration > 0 {
		rep.PoolRatio = te.Duration.Seconds() / pe.Duration.Seconds()
	}
	if baseLatency > 0 {
		rep.LatencyOverhead = float64(rep.Latency)/float64(baseLatency) - 1
	}
	// Fleet power: pools sized by PoolRatio, each fully pipelined.
	promptShare := 1 / (1 + rep.PoolRatio)
	tokenShare := rep.PoolRatio / (1 + rep.PoolRatio)
	rep.FleetMeanWatts = promptShare*pe.MeanPower() + tokenShare*te.MeanPower()
	rep.FleetBaseWatts = baseEnergy / baseLatency.Seconds()
	if rep.FleetBaseWatts > 0 {
		rep.PowerSavings = 1 - rep.FleetMeanWatts/rep.FleetBaseWatts
	}
	return rep, nil
}

// secToDur converts seconds to a duration.
func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
