// Package plan translates LLM workload configurations into per-GPU
// execution phases for the gpu package: an inference request becomes a
// prompt phase followed by a token-sampling phase; a training iteration
// becomes forward, backward, and gradient-synchronization phases.
//
// Plans encode the parallelism arithmetic (tensor-parallel sharding across
// the serving GPUs, all-reduce communication time) so that the GPU model
// receives realistic per-device FLOP, byte, and overhead figures.
package plan

import (
	"fmt"
	"math"

	"polca/internal/gpu"
	"polca/internal/llm"
)

// InferenceConfig describes one inference execution (paper §2 knobs).
type InferenceConfig struct {
	Model llm.Model
	DType llm.DType
	// TensorParallel is the number of GPUs serving the model. Zero means
	// the catalog default (Table 3).
	TensorParallel int
	BatchSize      int
	InputTokens    int // prompt length per request
	OutputTokens   int // generated tokens per request
	// NVLinkGBps is the inter-GPU bandwidth used for tensor-parallel
	// all-reduces. Zero means the A100 default (600 GB/s).
	NVLinkGBps float64
}

// withDefaults fills in catalog defaults and validates.
func (c InferenceConfig) withDefaults() (InferenceConfig, error) {
	if c.TensorParallel == 0 {
		c.TensorParallel = c.Model.InferenceGPUs
	}
	switch {
	case c.Model.Params <= 0:
		return c, fmt.Errorf("plan: no model")
	case c.TensorParallel <= 0:
		return c, fmt.Errorf("plan: bad tensor-parallel degree %d", c.TensorParallel)
	case c.BatchSize <= 0:
		return c, fmt.Errorf("plan: bad batch size %d", c.BatchSize)
	case c.InputTokens <= 0:
		return c, fmt.Errorf("plan: bad input size %d", c.InputTokens)
	case c.OutputTokens < 0:
		return c, fmt.Errorf("plan: bad output size %d", c.OutputTokens)
	}
	return c, nil
}

// Inference is a per-GPU execution plan for one inference batch. Every GPU
// in the tensor-parallel group executes the same phases simultaneously.
type Inference struct {
	Config InferenceConfig
	// Prompt is the prompt-processing phase (compute-bound spike).
	Prompt gpu.Phase
	// Token is the aggregated token-sampling phase covering all output
	// tokens (memory-bound plateau). Zero-valued if OutputTokens == 0 or
	// the model is encoder-only.
	Token gpu.Phase
	// TokenSteps is the number of sequential sampling steps Token covers.
	TokenSteps int
	// MemUsedGB is the per-GPU resident memory (weights + peak KV).
	MemUsedGB float64
}

// Phases returns the plan's phases in execution order, omitting empty ones.
func (p Inference) Phases() []gpu.Phase {
	out := make([]gpu.Phase, 0, 2)
	if p.Prompt.FLOPs > 0 || p.Prompt.MemBytes > 0 {
		out = append(out, p.Prompt)
	}
	if p.TokenSteps > 0 {
		out = append(out, p.Token)
	}
	return out
}

// Per-layer constants for overhead modelling. These are calibrated to the
// throughput ballpark of DeepSpeed-Inference/vLLM on A100s rather than to
// any single framework.
const (
	kernelsPerLayer     = 5     // fused kernels launched per layer per step
	kernelLaunchSec     = 12e-6 // launch+small-op cost per kernel at max clock
	allReduceLatencySec = 20e-6 // per-all-reduce latency on NVLink
	allReducesPerLayer  = 2     // tensor-parallel sync points per layer
)

// NewInference builds the per-GPU plan for an inference configuration.
func NewInference(c InferenceConfig) (Inference, error) {
	c, err := c.withDefaults()
	if err != nil {
		return Inference{}, err
	}
	m := c.Model
	tp := float64(c.TensorParallel)

	// Encoder-only models produce no sampled tokens.
	outTokens := c.OutputTokens
	if m.Arch == llm.Encoder {
		outTokens = 0
	}

	// --- Prompt phase ---
	promptFLOPs := m.PromptFLOPs(c.BatchSize, c.InputTokens) / tp
	promptBytes := m.PromptBytes(c.DType, c.BatchSize, c.InputTokens) / tp
	prompt := gpu.Phase{
		Name:            "prompt",
		DType:           c.DType,
		FLOPs:           promptFLOPs,
		MemBytes:        promptBytes,
		TensorFrac:      0.97,
		Efficiency:      promptEfficiency(c.BatchSize * c.InputTokens),
		CommSeconds:     promptComm(m, c),
		OverheadSeconds: float64(m.Layers) * kernelsPerLayer * kernelLaunchSec,
	}

	// --- Token phase (aggregate of all sampling steps) ---
	var token gpu.Phase
	if outTokens > 0 {
		// Use the mean KV length across the generation to aggregate steps.
		meanKV := c.InputTokens + outTokens/2
		stepFLOPs := m.TokenStepFLOPs(c.BatchSize, meanKV) / tp
		stepBytes := m.TokenStepBytes(c.DType, c.BatchSize, meanKV) / tp
		steps := float64(outTokens)
		token = gpu.Phase{
			Name:            "token",
			DType:           c.DType,
			FLOPs:           stepFLOPs * steps,
			MemBytes:        stepBytes * steps,
			TensorFrac:      0.9,
			CommSeconds:     tokenComm(m, c) * steps,
			OverheadSeconds: float64(m.Layers) * kernelsPerLayer * kernelLaunchSec * steps,
		}
	}

	weightsGB := m.WeightBytes(c.DType) / tp / 1e9
	kvGB := m.KVBytesPerToken(c.DType) * float64(c.BatchSize) * float64(c.InputTokens+outTokens) / tp / 1e9
	return Inference{
		Config:     c,
		Prompt:     prompt,
		Token:      token,
		TokenSteps: outTokens,
		MemUsedGB:  weightsGB + kvGB,
	}, nil
}

// nvlink returns the configured interconnect bandwidth in bytes/s.
func (c InferenceConfig) nvlink() float64 {
	if c.NVLinkGBps > 0 {
		return c.NVLinkGBps * 1e9
	}
	return 600e9
}

// promptEfficiency returns the achieved fraction of peak tensor throughput
// for a prompt over the given number of tokens (batch × input). Small
// prompts run skinny GEMMs that underfill the tensor cores; efficiency
// saturates as prompts grow. This is what makes peak power rise steeply
// with input and batch size (Figure 8a/8c) while small prompts stay well
// below TDP.
func promptEfficiency(tokens int) float64 {
	e := float64(tokens) / (float64(tokens) + 400)
	return math.Min(math.Max(e, 0.15), 0.97)
}

// promptComm returns the un-hideable tensor-parallel communication time of
// the prompt phase: two all-reduces per layer over the activation tensor.
func promptComm(m llm.Model, c InferenceConfig) float64 {
	return AllReduceSeconds(m, c.DType, c.TensorParallel, c.BatchSize*c.InputTokens, c.NVLinkGBps)
}

// tokenComm returns per-step communication time during token sampling: the
// activation tensor is one token wide, so latency dominates.
func tokenComm(m llm.Model, c InferenceConfig) float64 {
	return AllReduceSeconds(m, c.DType, c.TensorParallel, c.BatchSize, c.NVLinkGBps)
}

// AllReduceSeconds returns the un-hideable tensor-parallel all-reduce time
// of one pass through the model with tokens activation rows in flight: two
// all-reduces per layer, each moving the tokens×hidden activation tensor
// at nvlinkGBps (0 = the A100 default) plus a fixed latency. Iteration-level
// schedulers use it with tokens = prompt-chunk tokens + decoding sequences
// so mixed batches pay the same sync cost the slot model's phases do.
func AllReduceSeconds(m llm.Model, dt llm.DType, tensorParallel, tokens int, nvlinkGBps float64) float64 {
	if tensorParallel <= 1 || tokens <= 0 {
		return 0
	}
	nvlink := InferenceConfig{NVLinkGBps: nvlinkGBps}.nvlink()
	actBytes := float64(tokens) * float64(m.Hidden) * dt.Bytes()
	perAR := actBytes/nvlink + allReduceLatencySec
	return float64(m.Layers) * allReducesPerLayer * perAR
}

// PassOverheadSeconds returns the kernel-launch overhead of one full pass
// through the model at maximum clock — the same per-step constant the slot
// model's phases carry, exported for iteration-level schedulers.
func PassOverheadSeconds(m llm.Model) float64 {
	return float64(m.Layers) * kernelsPerLayer * kernelLaunchSec
}

// BatchEfficiency exposes the prompt-efficiency curve for iteration-level
// schedulers: the achieved fraction of peak tensor throughput when tokens
// rows (prompt-chunk tokens plus one per decoding sequence) run through the
// layer GEMMs in parallel. Decode-only iterations with small batches stay
// on the inefficient, memory-bound end; big mixed batches approach the
// prompt phase's saturation.
func BatchEfficiency(tokens int) float64 {
	return promptEfficiency(tokens)
}

// GPUsForDType returns the minimum number of A100-80GB GPUs needed to hold
// the model weights (plus ~10% runtime state) at the given datatype,
// reproducing the paper's datatype study (§4.2): Llama2-70B needs four
// GPUs at FP32 but two at FP16 or INT8.
func GPUsForDType(m llm.Model, dt llm.DType, gpuMemGB float64) int {
	need := m.WeightBytes(dt) * 1.1 / 1e9
	n := int(math.Ceil(need / gpuMemGB))
	if n < 1 {
		n = 1
	}
	return n
}

// TrainingConfig describes a fine-tuning setup (paper §3.4: batch sized to
// ~85% of GPU memory, 8 GPUs per server).
type TrainingConfig struct {
	Model  llm.Model
	DType  llm.DType
	GPUs   int // data/tensor-parallel degree on the server
	Batch  int // global batch size in sequences
	SeqLen int
	// Efficiency is the achieved fraction of peak math throughput (small
	// models launch small kernels with low occupancy). Zero means 1.0.
	Efficiency float64
	// SyncOverlap is the fraction of compute that stays resident on the
	// GPUs during the end-of-iteration gradient synchronization (0 = GPUs
	// drain to idle, as with Flan-T5 under ZeRO offloading; ~0.6 ≈
	// RoBERTa's shallow trough). It controls Figure 4's trough depths.
	SyncOverlap float64
	// SyncSeconds is the duration of the iteration-boundary synchronization
	// (all-reduce + optimizer step + data loading).
	SyncSeconds float64
	// MidDipSeconds is the brief forward/backward boundary dip.
	MidDipSeconds float64
}

// TrainingProfiles returns the paper's three fine-tuning setups (Figure 4)
// with per-model synchronization behaviour calibrated to the published
// trough depths: RoBERTa stays near 75% TDP at iteration boundaries,
// GPT-NeoX drops to ~50%, Flan-T5 falls to idle (~20%).
func TrainingProfiles() []TrainingConfig {
	roberta := llm.MustByName("RoBERTa-355M")
	neox := llm.MustByName("GPT-NeoX-20B")
	flant5 := llm.MustByName("Flan-T5-XXL-11B")
	return []TrainingConfig{
		{Model: roberta, DType: llm.FP16, GPUs: 8, Batch: 768, SeqLen: 512,
			Efficiency: 0.6, SyncOverlap: 0.53, SyncSeconds: 0.2, MidDipSeconds: 0.06},
		{Model: neox, DType: llm.FP16, GPUs: 8, Batch: 16, SeqLen: 2048,
			Efficiency: 1.0, SyncOverlap: 0.32, SyncSeconds: 0.5, MidDipSeconds: 0.1},
		{Model: flant5, DType: llm.FP16, GPUs: 8, Batch: 96, SeqLen: 1024,
			Efficiency: 0.9, SyncOverlap: 0.0, SyncSeconds: 1.2, MidDipSeconds: 0.15},
	}
}

// Training is a per-GPU plan for one training iteration.
type Training struct {
	Config   TrainingConfig
	Forward  gpu.Phase
	MidDip   gpu.Phase // thread sync between forward and backward
	Backward gpu.Phase
	Sync     gpu.Phase // iteration-boundary gradient sync / optimizer
}

// Phases returns the iteration's phases in execution order.
func (t Training) Phases() []gpu.Phase {
	return []gpu.Phase{t.Forward, t.MidDip, t.Backward, t.Sync}
}

// NewTraining builds the per-GPU plan for one training iteration.
func NewTraining(c TrainingConfig) (Training, error) {
	switch {
	case c.Model.Params <= 0:
		return Training{}, fmt.Errorf("plan: no model")
	case c.GPUs <= 0 || c.Batch <= 0 || c.SeqLen <= 0:
		return Training{}, fmt.Errorf("plan: bad training shape %d/%d/%d", c.GPUs, c.Batch, c.SeqLen)
	case c.SyncOverlap < 0 || c.SyncOverlap > 1:
		return Training{}, fmt.Errorf("plan: bad sync overlap %v", c.SyncOverlap)
	}
	m := c.Model
	n := float64(c.GPUs)
	total := m.TrainStepFLOPs(c.Batch, c.SeqLen)
	fwdFLOPs := total / 3 / n // forward is 2·P of the 6·P per token
	bwdFLOPs := total * 2 / 3 / n
	actBytes := 14 * float64(m.Layers) * float64(m.Hidden) * c.DType.Bytes() *
		float64(c.Batch) * float64(c.SeqLen) / n

	fwd := gpu.Phase{
		Name:            "forward",
		DType:           c.DType,
		FLOPs:           fwdFLOPs,
		MemBytes:        actBytes,
		TensorFrac:      0.95,
		Efficiency:      c.Efficiency,
		OverheadSeconds: float64(m.Layers) * kernelsPerLayer * kernelLaunchSec,
	}
	bwd := gpu.Phase{
		Name:            "backward",
		DType:           c.DType,
		FLOPs:           bwdFLOPs,
		MemBytes:        2 * actBytes,
		TensorFrac:      0.95,
		Efficiency:      c.Efficiency,
		OverheadSeconds: 2 * float64(m.Layers) * kernelsPerLayer * kernelLaunchSec,
	}
	// The dips are communication/synchronization stalls: low math, some
	// residual activity proportional to the overlap factor.
	mid := syncPhase("middip", c, c.MidDipSeconds, math.Min(c.SyncOverlap+0.15, 1))
	sync := syncPhase("sync", c, c.SyncSeconds, c.SyncOverlap)
	return Training{Config: c, Forward: fwd, MidDip: mid, Backward: bwd, Sync: sync}, nil
}

// syncPhase builds a stall phase of the given duration whose residual GPU
// activity is proportional to overlap.
func syncPhase(name string, c TrainingConfig, seconds, overlap float64) gpu.Phase {
	// Residual math keeps the SMs overlap-fraction busy for the duration.
	spec := gpu.A100SXM80GB()
	flops := spec.PeakFLOPS(c.DType) * c.DType.KernelEfficiency() * overlap * seconds
	return gpu.Phase{
		Name:        name,
		DType:       c.DType,
		FLOPs:       flops,
		MemBytes:    0.2 * overlap * seconds * spec.MemBandwidthGBps * 1e9,
		TensorFrac:  0.9,
		CommSeconds: seconds * (1 - overlap),
	}
}
