package plan

import (
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
)

// TestCalibrationReport prints the model's headline numbers for manual
// inspection with -v. It asserts nothing beyond successful execution.
func TestCalibrationReport(t *testing.T) {
	spec := gpu.A100SXM80GB()
	for _, m := range llm.InferenceModels() {
		p, err := NewInference(InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 256})
		if err != nil {
			t.Fatal(err)
		}
		d := gpu.NewDevice(spec)
		pe := d.Run(p.Prompt)
		te := d.Run(p.Token)
		t.Logf("%-16s tp=%d prompt: %7.3fs peak=%.2fTDP | token: %7.3fs (%.1f tok/s) mean=%.2fTDP | mem=%.0fGB",
			m.Name, p.Config.TensorParallel, pe.Duration.Seconds(), pe.PeakPower()/spec.TDPWatts,
			te.Duration.Seconds(), float64(p.TokenSteps)/te.Duration.Seconds(), te.MeanPower()/spec.TDPWatts, p.MemUsedGB)
	}
	bloom := llm.MustByName("BLOOM-176B")
	p, _ := NewInference(InferenceConfig{Model: bloom, DType: llm.FP16, BatchSize: 1, InputTokens: 8192, OutputTokens: 128})
	d := gpu.NewDevice(spec)
	total := d.Run(p.Prompt).Duration + d.Run(p.Token).Duration
	t.Logf("BLOOM i=8192 o=128 b=1 e2e: %.2fs", total.Seconds())

	for _, c := range TrainingProfiles() {
		tr, err := NewTraining(c)
		if err != nil {
			t.Fatal(err)
		}
		d := gpu.NewDevice(gpu.A100SXM40GB())
		var iter time.Duration
		var peak float64
		for _, ph := range tr.Phases() {
			e := d.Run(ph)
			iter += e.Duration
			if e.PeakPower() > peak {
				peak = e.PeakPower()
			}
		}
		syncP := d.Run(tr.Sync).MeanPower()
		t.Logf("%-16s iter=%.2fs peak=%.2fTDP syncPower=%.2fTDP",
			c.Model.Name, iter.Seconds(), peak/400, syncP/400)
	}
}
