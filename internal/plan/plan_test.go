package plan

import (
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
)

func bloomCfg(batch, in, out int) InferenceConfig {
	return InferenceConfig{
		Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16,
		BatchSize: batch, InputTokens: in, OutputTokens: out,
	}
}

func mustPlan(t *testing.T, c InferenceConfig) Inference {
	t.Helper()
	p, err := NewInference(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runE2E executes the plan and returns latency plus prompt/token execs.
func runE2E(t *testing.T, p Inference) (time.Duration, gpu.Exec, gpu.Exec) {
	t.Helper()
	d := gpu.NewDevice(gpu.A100SXM80GB())
	pe := d.Run(p.Prompt)
	var te gpu.Exec
	if p.TokenSteps > 0 {
		te = d.Run(p.Token)
	}
	return pe.Duration + te.Duration, pe, te
}

func TestDefaultsFromCatalog(t *testing.T) {
	p := mustPlan(t, bloomCfg(1, 512, 64))
	if p.Config.TensorParallel != 8 {
		t.Errorf("BLOOM default TP = %d, want 8 (Table 3)", p.Config.TensorParallel)
	}
}

func TestInferenceConfigValidation(t *testing.T) {
	bad := []InferenceConfig{
		{},
		{Model: llm.MustByName("OPT-30B"), BatchSize: 0, InputTokens: 1, OutputTokens: 1},
		{Model: llm.MustByName("OPT-30B"), BatchSize: 1, InputTokens: 0, OutputTokens: 1},
		{Model: llm.MustByName("OPT-30B"), BatchSize: 1, InputTokens: 1, OutputTokens: -1},
		{Model: llm.MustByName("OPT-30B"), TensorParallel: -2, BatchSize: 1, InputTokens: 1},
	}
	for i, c := range bad {
		if _, err := NewInference(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestTwoPhaseShape(t *testing.T) {
	// Figure 6: a short compute spike then a long stable lower plateau.
	p := mustPlan(t, bloomCfg(1, 2048, 256))
	_, pe, te := runE2E(t, p)
	tdp := gpu.A100SXM80GB().TDPWatts
	if pe.PeakPower() < tdp {
		t.Errorf("prompt peak %.0f W below TDP", pe.PeakPower())
	}
	if r := te.MeanPower() / tdp; r < 0.55 || r > 0.8 {
		t.Errorf("token plateau = %.2f TDP, want 0.55-0.8", r)
	}
	if te.Duration < 5*pe.Duration {
		t.Errorf("token phase (%v) should dwarf prompt (%v) at 256 outputs", te.Duration, pe.Duration)
	}
}

func TestEncoderModelHasNoTokenPhase(t *testing.T) {
	p := mustPlan(t, InferenceConfig{
		Model: llm.MustByName("RoBERTa-355M"), DType: llm.FP16,
		BatchSize: 8, InputTokens: 512, OutputTokens: 100, // output ignored
	})
	if p.TokenSteps != 0 {
		t.Errorf("encoder model has %d token steps, want 0", p.TokenSteps)
	}
	if len(p.Phases()) != 1 {
		t.Errorf("encoder plan phases = %d, want 1", len(p.Phases()))
	}
}

func TestPeakPowerRisesWithInputSize(t *testing.T) {
	// Figure 8a: peak power drastically increases with input size; mean
	// power stays stable and low.
	d := gpu.NewDevice(gpu.A100SXM80GB())
	var lastPeak float64
	var means []float64
	for _, in := range []int{256, 1024, 4096, 8192} {
		p := mustPlan(t, bloomCfg(1, in, 128))
		peak := d.PeakPower(p.Prompt)
		if peak < lastPeak-1e-9 {
			t.Errorf("peak power fell from %.0f to %.0f as input grew to %d", lastPeak, peak, in)
		}
		lastPeak = peak
		means = append(means, d.Run(p.Token).MeanPower())
	}
	spread := (means[len(means)-1] - means[0]) / means[0]
	if spread > 0.25 {
		t.Errorf("token mean power grew %.0f%% across input sizes, want stable (Figure 8a)", spread*100)
	}
}

func TestLatencyInsensitiveToInputUntilLarge(t *testing.T) {
	// Figure 8b: latency barely moves with input size until >4096 tokens.
	lat := map[int]time.Duration{}
	for _, in := range []int{256, 2048, 8192} {
		l, _, _ := runE2E(t, mustPlan(t, bloomCfg(1, in, 256)))
		lat[in] = l
	}
	if g := float64(lat[2048]) / float64(lat[256]); g > 1.25 {
		t.Errorf("latency grew %.2fx from input 256 to 2048, want < 1.25x", g)
	}
	if g := float64(lat[8192]) / float64(lat[256]); g < 1.2 {
		t.Errorf("latency grew only %.2fx at input 8192, expected visible growth", g)
	}
}

func TestLatencyLinearInOutputSize(t *testing.T) {
	// Figure 8f: output size stretches execution ~linearly.
	l1, _, _ := runE2E(t, mustPlan(t, bloomCfg(1, 1024, 128)))
	l4, _, _ := runE2E(t, mustPlan(t, bloomCfg(1, 1024, 512)))
	ratio := float64(l4) / float64(l1)
	if ratio < 3 || ratio > 5 {
		t.Errorf("4x output gave %.2fx latency, want ~4x", ratio)
	}
	// Figure 8e: output size leaves peak and mean power unchanged.
	d := gpu.NewDevice(gpu.A100SXM80GB())
	p1 := mustPlan(t, bloomCfg(1, 1024, 128))
	p4 := mustPlan(t, bloomCfg(1, 1024, 512))
	if pk1, pk4 := d.PeakPower(p1.Prompt), d.PeakPower(p4.Prompt); pk1 != pk4 {
		t.Errorf("peak power changed with output size: %v vs %v", pk1, pk4)
	}
	m1 := d.Run(p1.Token).MeanPower()
	m4 := d.Run(p4.Token).MeanPower()
	if diff := (m4 - m1) / m1; diff > 0.1 || diff < -0.1 {
		t.Errorf("token mean power moved %.0f%% with output size, want stable", diff*100)
	}
}

func TestBatchRaisesPeakAndMeanPower(t *testing.T) {
	// Figure 8c: batch raises peak power (more prompt compute) and nudges
	// mean power up (more tokens in flight).
	d := gpu.NewDevice(gpu.A100SXM80GB())
	p1 := mustPlan(t, bloomCfg(1, 512, 128))
	p16 := mustPlan(t, bloomCfg(16, 512, 128))
	if d.PeakPower(p16.Prompt) < d.PeakPower(p1.Prompt) {
		t.Error("peak power should not fall with batch size")
	}
	m1 := d.Run(p1.Token).MeanPower()
	m16 := d.Run(p16.Token).MeanPower()
	if m16 <= m1 {
		t.Errorf("token mean power %v at batch 16 should exceed %v at batch 1", m16, m1)
	}
}

func TestLargerModelsDrawMorePower(t *testing.T) {
	// §4.2: larger models show larger peak and mean power at the same config.
	d := gpu.NewDevice(gpu.A100SXM80GB())
	small := mustPlan(t, InferenceConfig{Model: llm.MustByName("GPT-NeoX-20B"), DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 128})
	big := mustPlan(t, bloomCfg(1, 2048, 128))
	if d.Run(big.Token).MeanPower() <= d.Run(small.Token).MeanPower() {
		t.Error("BLOOM token power should exceed GPT-NeoX (more weight streaming per GPU)")
	}
}

func TestGPUsForDType(t *testing.T) {
	l70 := llm.MustByName("Llama2-70B")
	l13 := llm.MustByName("Llama2-13B")
	cases := []struct {
		m    llm.Model
		dt   llm.DType
		want int
	}{
		{l70, llm.FP32, 4},
		{l70, llm.FP16, 2},
		{l70, llm.INT8, 1}, // weights alone fit; paper notes KV may still force 2
		{l13, llm.FP32, 1},
		{l13, llm.FP16, 1},
		{l13, llm.INT8, 1},
	}
	for _, c := range cases {
		if got := GPUsForDType(c.m, c.dt, 80); got != c.want {
			t.Errorf("GPUsForDType(%s, %v) = %d, want %d", c.m.Name, c.dt, got, c.want)
		}
	}
}

func TestDatatypeTradeoffs(t *testing.T) {
	// §4.2: FP16 is fastest with highest peak power (tensor cores); FP32 and
	// INT8 are slower. Fewer GPUs at smaller datatypes draw less total power.
	m := llm.MustByName("Llama2-70B")
	lat := map[llm.DType]time.Duration{}
	for _, dt := range []llm.DType{llm.FP32, llm.FP16, llm.INT8} {
		tp := GPUsForDType(m, dt, 80)
		if dt == llm.INT8 {
			tp = 2 // paper: activations/KV preclude a single GPU
		}
		p := mustPlan(t, InferenceConfig{Model: m, DType: dt, TensorParallel: tp, BatchSize: 1, InputTokens: 1024, OutputTokens: 128})
		l, _, _ := runE2E(t, p)
		lat[dt] = l
	}
	if lat[llm.FP16] >= lat[llm.FP32] {
		t.Errorf("FP16 (%v) should beat FP32 (%v)", lat[llm.FP16], lat[llm.FP32])
	}
	if lat[llm.FP16] >= lat[llm.INT8] {
		t.Errorf("FP16 (%v) should beat INT8 (%v) due to kernel efficiency", lat[llm.FP16], lat[llm.INT8])
	}
}

func TestMemUsage(t *testing.T) {
	p := mustPlan(t, bloomCfg(1, 2048, 256))
	// 352 GB FP16 weights over 8 GPUs = 44 GB + KV.
	if p.MemUsedGB < 44 || p.MemUsedGB > 60 {
		t.Errorf("BLOOM per-GPU memory = %.0f GB, want 44-60", p.MemUsedGB)
	}
	if p.MemUsedGB > gpu.A100SXM80GB().MemoryGB {
		t.Errorf("plan exceeds GPU memory: %.0f GB", p.MemUsedGB)
	}
}

func TestTrainingProfiles(t *testing.T) {
	profiles := TrainingProfiles()
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d, want 3 (Figure 4)", len(profiles))
	}
	tdp := gpu.A100SXM40GB().TDPWatts
	troughTargets := map[string][2]float64{
		"RoBERTa-355M":    {0.65, 0.85}, // paper: ~75% of TDP at boundary
		"GPT-NeoX-20B":    {0.4, 0.6},   // ~50%
		"Flan-T5-XXL-11B": {0.18, 0.3},  // ~20% (idle)
	}
	for _, c := range profiles {
		tr, err := NewTraining(c)
		if err != nil {
			t.Fatal(err)
		}
		d := gpu.NewDevice(gpu.A100SXM40GB())
		var iter time.Duration
		for _, ph := range tr.Phases() {
			iter += d.Run(ph).Duration
		}
		if iter < 500*time.Millisecond || iter > 8*time.Second {
			t.Errorf("%s iteration = %v, want 0.5-8 s", c.Model.Name, iter)
		}
		trough := d.Run(tr.Sync).MeanPower() / tdp
		want := troughTargets[c.Model.Name]
		if trough < want[0] || trough > want[1] {
			t.Errorf("%s sync trough = %.2f TDP, want %v (Figure 4)", c.Model.Name, trough, want)
		}
	}
}

func TestTrainingPeaks(t *testing.T) {
	// Insight 1: peaks reach or exceed TDP for GPT-NeoX and Flan-T5 but not
	// for RoBERTa.
	tdp := gpu.A100SXM40GB().TDPWatts
	for _, c := range TrainingProfiles() {
		tr, _ := NewTraining(c)
		d := gpu.NewDevice(gpu.A100SXM40GB())
		peak := 0.0
		for _, ph := range tr.Phases() {
			if p := d.Run(ph).PeakPower(); p > peak {
				peak = p
			}
		}
		if c.Model.Name == "RoBERTa-355M" {
			if peak >= tdp {
				t.Errorf("RoBERTa peak %.0f W should stay below TDP (Figure 4)", peak)
			}
		} else if peak < tdp {
			t.Errorf("%s peak %.0f W should reach TDP (Figure 4)", c.Model.Name, peak)
		}
	}
}

func TestTrainingValidation(t *testing.T) {
	m := llm.MustByName("RoBERTa-355M")
	bad := []TrainingConfig{
		{},
		{Model: m, GPUs: 0, Batch: 1, SeqLen: 1},
		{Model: m, GPUs: 1, Batch: 0, SeqLen: 1},
		{Model: m, GPUs: 1, Batch: 1, SeqLen: 0},
		{Model: m, GPUs: 1, Batch: 1, SeqLen: 1, SyncOverlap: 1.5},
	}
	for i, c := range bad {
		if _, err := NewTraining(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestTrainingPhaseOrder(t *testing.T) {
	tr, err := NewTraining(TrainingProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"forward", "middip", "backward", "sync"}
	for i, ph := range tr.Phases() {
		if ph.Name != names[i] {
			t.Errorf("phase[%d] = %s, want %s", i, ph.Name, names[i])
		}
	}
	// Backward is ~2x forward compute.
	if r := tr.Backward.FLOPs / tr.Forward.FLOPs; r < 1.9 || r > 2.1 {
		t.Errorf("bwd/fwd FLOPs = %.2f, want ~2", r)
	}
}
