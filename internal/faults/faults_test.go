package faults_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"polca/internal/faults"
)

// namedStreams returns a rnd callback like sim.Engine.Rand: a deterministic
// stream per name, stable across runs.
func namedStreams(seed int64) func(name string) *rand.Rand {
	return func(name string) *rand.Rand {
		h := seed
		for _, c := range name {
			h = h*31 + int64(c)
		}
		return rand.New(rand.NewSource(h))
	}
}

func TestParseEmpty(t *testing.T) {
	for _, text := range []string{"", "   ", ",", " , "} {
		s, err := faults.Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if s.Enabled() {
			t.Errorf("Parse(%q) should be disabled, got %+v", text, s)
		}
		if s.String() != "" {
			t.Errorf("zero spec String() = %q, want empty", s.String())
		}
	}
}

func TestParseFullScenario(t *testing.T) {
	text := "tdrop=0.05,tspike=0.02:0.5,tstuck=10h+30m,tblackout=4h+5m," +
		"crash=6h+20,miss=0.01,oobburst=11h+15m,ooblat=1.5,kill=2@8h+1h,slow=2:1.3," +
		"drain=2@12h+30m"
	s, err := faults.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Spec{
		DropProb:  0.05,
		SpikeProb: 0.02, SpikeMag: 0.5,
		Stuck:        []faults.Window{{Start: 10 * time.Hour, Dur: 30 * time.Minute}},
		Blackout:     []faults.Window{{Start: 4 * time.Hour, Dur: 5 * time.Minute}},
		Crashes:      []faults.Crash{{At: 6 * time.Hour, Epochs: 20}},
		MissProb:     0.01,
		Burst:        []faults.Window{{Start: 11 * time.Hour, Dur: 15 * time.Minute}},
		LatencyScale: 1.5,
		Kills:        []faults.Kill{{Servers: 2, Window: faults.Window{Start: 8 * time.Hour, Dur: time.Hour}}},
		Stragglers:   2, StragglerFactor: 1.3,
		Drains:       []faults.Kill{{Servers: 2, Window: faults.Window{Start: 12 * time.Hour, Dur: 30 * time.Minute}}},
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("Parse mismatch:\n got %+v\nwant %+v", s, want)
	}
	if !s.Enabled() {
		t.Error("full scenario should be enabled")
	}
}

// TestRoundTrip: Parse(s.String()) must be equivalent to s, with windows
// in the canonical sorted order.
func TestRoundTrip(t *testing.T) {
	specs := []string{
		"tdrop=0.05",
		"tspike=0.02:0.5",
		"tstuck=1h+5m,tstuck=30m+1m", // out of order: String sorts
		"crash=2h+10,crash=1h+5",
		"kill=3@2h+10m,kill=1@1h+5m",
		"miss=0.1,ooblat=2,slow=4:1.5",
		"drain=3@2h+10m,drain=1@1h+5m", // out of order: String sorts
		"tdrop=0.05,tspike=0.02:0.5,tstuck=10h+30m,tblackout=4h+5m," +
			"crash=6h+20,miss=0.01,oobburst=11h+15m,ooblat=1.5,kill=2@8h+1h,slow=2:1.3," +
			"drain=2@12h+30m",
	}
	for _, text := range specs {
		s, err := faults.Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		canon := s.String()
		s2, err := faults.Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String()=%q): %v", canon, err)
		}
		if got := s2.String(); got != canon {
			t.Errorf("round trip of %q not canonical: %q then %q", text, canon, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense",             // not key=value
		"frob=1",               // unknown key
		"tdrop=1.5",            // probability out of range
		"tdrop=-0.1",           // negative probability
		"tdrop=NaN",            // not a number
		"tspike=0.1",           // missing magnitude
		"tspike=0.1:9",         // magnitude out of range
		"tstuck=5m",            // missing duration
		"tstuck=bogus+5m",      // bad start
		"tstuck=-1h+5m",        // negative start
		"crash=5m",             // missing epochs
		"crash=5m+x",           // bad epoch count
		"kill=2h+5m",           // missing count
		"kill=x@2h+5m",         // bad count
		"kill=-1@2h+5m",        // negative count
		"drain=2h+5m",          // missing count
		"drain=x@2h+5m",        // bad count
		"drain=-1@2h+5m",       // negative count
		"slow=2.5:1.3",         // fractional straggler count
		"slow=2:0.5",           // speed-up is not a straggler
		"ooblat=-1",            // negative latency scale
		"ooblat=Inf",           // not finite
		"tdrop=0.05,miss=1.00", // one bad item poisons the spec
	}
	for _, text := range bad {
		if _, err := faults.Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestScaleZeroAndIdentity(t *testing.T) {
	s, err := faults.Parse("tdrop=0.05,tstuck=1h+10m,crash=2h+8,kill=2@3h+20m,slow=2:1.5,ooblat=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Scale(0); got.Enabled() {
		t.Errorf("Scale(0) = %+v, want disabled", got)
	}
	if got := s.Scale(-3); got.Enabled() {
		t.Errorf("Scale(-3) = %+v, want disabled", got)
	}
	if got, want := s.Scale(1).String(), s.String(); got != want {
		t.Errorf("Scale(1) = %q, want %q", got, want)
	}
}

func TestScaleHalvesAndCaps(t *testing.T) {
	s, err := faults.Parse("tdrop=0.5,tstuck=1h+10m,crash=2h+8,kill=4@3h+20m,slow=2:1.5,ooblat=2")
	if err != nil {
		t.Fatal(err)
	}
	h := s.Scale(0.5)
	if h.DropProb != 0.25 {
		t.Errorf("DropProb = %v, want 0.25", h.DropProb)
	}
	if h.Stuck[0].Dur != 5*time.Minute {
		t.Errorf("stuck dur = %v, want 5m", h.Stuck[0].Dur)
	}
	if h.Crashes[0].Epochs != 4 {
		t.Errorf("crash epochs = %d, want 4", h.Crashes[0].Epochs)
	}
	if h.Kills[0].Servers != 2 || h.Kills[0].Dur != 10*time.Minute {
		t.Errorf("kill = %+v, want 2 servers for 10m", h.Kills[0])
	}
	if h.Stragglers != 1 || h.StragglerFactor != 1.25 {
		t.Errorf("stragglers = %d×%v, want 1×1.25", h.Stragglers, h.StragglerFactor)
	}
	if h.LatencyScale != 1.5 {
		t.Errorf("latency scale = %v, want 1.5", h.LatencyScale)
	}
	// Scaling far up saturates probabilities below 1 so Validate still holds.
	up := s.Scale(10)
	if up.DropProb != 0.99 {
		t.Errorf("DropProb at Scale(10) = %v, want 0.99 cap", up.DropProb)
	}
	if err := up.Validate(); err != nil {
		t.Errorf("scaled-up spec should validate: %v", err)
	}
}

func TestNilInjector(t *testing.T) {
	var inj *faults.Injector
	if got, ok := inj.Telemetry(time.Hour, 0.7, 0.5, true); got != 0.7 || !ok {
		t.Errorf("nil Telemetry = (%v, %v), want (0.7, true)", got, ok)
	}
	if inj.ControllerDown(time.Hour, 2*time.Second) {
		t.Error("nil ControllerDown should be false")
	}
	if inj.MissedTick() {
		t.Error("nil MissedTick should be false")
	}
	if inj.OOBBurstFailure(time.Hour) {
		t.Error("nil OOBBurstFailure should be false")
	}
	if got := inj.OOBLatency(40 * time.Second); got != 40*time.Second {
		t.Errorf("nil OOBLatency = %v, want 40s", got)
	}
	if inj.ServerDead(3, time.Hour) {
		t.Error("nil ServerDead should be false")
	}
	if got := inj.SlowFactor(3); got != 1 {
		t.Errorf("nil SlowFactor = %v, want 1", got)
	}
	inj.CountNodeDeath() // must not panic
	if inj.Counts() != (faults.Counts{}) || inj.Spec().Enabled() {
		t.Error("nil injector should report zero counts and spec")
	}
}

func TestNewDisabledReturnsNil(t *testing.T) {
	if inj := faults.New(faults.Spec{}, 16, namedStreams(1)); inj != nil {
		t.Errorf("New with zero spec = %v, want nil", inj)
	}
}

func TestInjectorWindows(t *testing.T) {
	spec, err := faults.Parse("tblackout=1h+10m,tstuck=2h+10m,oobburst=3h+10m,crash=4h+5,ooblat=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(spec, 8, namedStreams(1))
	if inj == nil {
		t.Fatal("injector should be live")
	}
	// Blackout loses the sample entirely.
	if _, ok := inj.Telemetry(time.Hour+time.Minute, 0.7, 0.6, true); ok {
		t.Error("sample inside blackout should be lost")
	}
	// Stuck repeats the last delivered reading.
	if got, ok := inj.Telemetry(2*time.Hour+time.Minute, 0.7, 0.6, true); !ok || got != 0.6 {
		t.Errorf("stuck sample = (%v, %v), want (0.6, true)", got, ok)
	}
	// Stuck with no prior reading passes the truth through (nothing to freeze).
	if got, ok := inj.Telemetry(2*time.Hour+2*time.Minute, 0.7, 0, false); !ok || got != 0.7 {
		t.Errorf("stuck sample without last = (%v, %v), want (0.7, true)", got, ok)
	}
	// Windows are half-open: the end instant is outside.
	if inj.OOBBurstFailure(3*time.Hour + 10*time.Minute) {
		t.Error("burst window end should be exclusive")
	}
	if !inj.OOBBurstFailure(3*time.Hour + 9*time.Minute) {
		t.Error("inside burst window should doom the command")
	}
	// Crash covers Epochs telemetry intervals.
	epoch := 2 * time.Second
	if !inj.ControllerDown(4*time.Hour, epoch) {
		t.Error("controller should be down at crash start")
	}
	if inj.ControllerDown(4*time.Hour+5*epoch, epoch) {
		t.Error("controller should be back after 5 epochs")
	}
	if got := inj.OOBLatency(40 * time.Second); got != 80*time.Second {
		t.Errorf("OOBLatency = %v, want 80s", got)
	}
	c := inj.Counts()
	if c.TelemetryLost != 1 || c.TelemetryStuck != 1 || c.OOBBurstFails != 1 || c.CtrlCrashTicks != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestInjectorVictimsDeterministic(t *testing.T) {
	spec, err := faults.Parse("slow=2:1.5,kill=3@1h+10m")
	if err != nil {
		t.Fatal(err)
	}
	const servers = 16
	a := faults.New(spec, servers, namedStreams(7))
	b := faults.New(spec, servers, namedStreams(7))
	mid := time.Hour + 5*time.Minute
	var slowA, slowB, deadA, deadB []int
	for i := 0; i < servers; i++ {
		if a.SlowFactor(i) > 1 {
			slowA = append(slowA, i)
		}
		if b.SlowFactor(i) > 1 {
			slowB = append(slowB, i)
		}
		if a.ServerDead(i, mid) {
			deadA = append(deadA, i)
		}
		if b.ServerDead(i, mid) {
			deadB = append(deadB, i)
		}
	}
	if len(slowA) != 2 || len(deadA) != 3 {
		t.Fatalf("victim counts: %d slow, %d dead", len(slowA), len(deadA))
	}
	if !reflect.DeepEqual(slowA, slowB) || !reflect.DeepEqual(deadA, deadB) {
		t.Error("same seed should pick the same victims")
	}
	for _, s := range slowA {
		for _, d := range deadA {
			if s == d {
				t.Errorf("server %d is both straggler and kill victim; draws should not overlap", s)
			}
		}
	}
	// Nobody dies outside the window.
	for i := 0; i < servers; i++ {
		if a.ServerDead(i, 3*time.Hour) {
			t.Errorf("server %d dead outside the kill window", i)
		}
	}
}

func TestTelemetryStreamDeterministic(t *testing.T) {
	spec, err := faults.Parse("tdrop=0.2,tspike=0.2:0.5")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		inj := faults.New(spec, 4, namedStreams(42))
		var out []float64
		last, have := 0.0, false
		for i := 0; i < 500; i++ {
			v, ok := inj.Telemetry(time.Duration(i)*2*time.Second, 0.6, last, have)
			if !ok {
				out = append(out, -1)
				continue
			}
			out = append(out, v)
			last, have = v, true
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed + spec should produce an identical fault sequence")
	}
	var lost, spiked int
	for _, v := range a {
		switch {
		case v == -1:
			lost++
		case v != 0.6:
			spiked++
		}
	}
	if lost == 0 || spiked == 0 {
		t.Errorf("expected both dropouts and spikes in 500 ticks, got %d lost %d spiked", lost, spiked)
	}
}

func TestValidateRejectsHandBuiltBadSpecs(t *testing.T) {
	bad := []faults.Spec{
		{DropProb: 1},
		{SpikeProb: 0.1}, // spike without magnitude
		{SpikeProb: 0.1, SpikeMag: 3},
		{MissProb: -0.5},
		{LatencyScale: -1},
		{Stragglers: -1},
		{Stragglers: 1, StragglerFactor: 0.5},
		{Stuck: []faults.Window{{Start: -time.Hour, Dur: time.Minute}}},
		{Crashes: []faults.Crash{{At: time.Hour, Epochs: -1}}},
		{Kills: []faults.Kill{{Servers: -1, Window: faults.Window{Start: 0, Dur: time.Minute}}}},
		{Drains: []faults.Kill{{Servers: -1, Window: faults.Window{Start: 0, Dur: time.Minute}}}},
		{Drains: []faults.Kill{{Servers: 1, Window: faults.Window{Start: -time.Hour, Dur: time.Minute}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) should fail validation", i, s)
		}
	}
}

// TestDrainAction covers the graceful-drain/maintenance action end to end:
// the spec is enabled by drains alone, scaling behaves like kills, the
// injector reports draining servers only inside the window, and the drain
// victims never overlap the kill or straggler draws.
func TestDrainAction(t *testing.T) {
	spec, err := faults.Parse("drain=4@1h+30m")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Enabled() {
		t.Error("drain-only spec should be enabled")
	}
	h := spec.Scale(0.5)
	if h.Drains[0].Servers != 2 || h.Drains[0].Dur != 15*time.Minute {
		t.Errorf("scaled drain = %+v, want 2 servers for 15m", h.Drains[0])
	}
	if got := spec.Scale(0); got.Enabled() {
		t.Errorf("Scale(0) = %+v, want disabled", got)
	}

	const servers = 16
	mixed, err := faults.Parse("kill=3@1h+10m,slow=2:1.5,drain=4@2h+30m")
	if err != nil {
		t.Fatal(err)
	}
	a := faults.New(mixed, servers, namedStreams(7))
	b := faults.New(mixed, servers, namedStreams(7))
	mid := 2*time.Hour + 5*time.Minute
	var drainA, drainB, deadA []int
	for i := 0; i < servers; i++ {
		if a.ServerDraining(i, mid) {
			drainA = append(drainA, i)
		}
		if b.ServerDraining(i, mid) {
			drainB = append(drainB, i)
		}
		if a.ServerDead(i, time.Hour+5*time.Minute) {
			deadA = append(deadA, i)
		}
		if a.ServerDraining(i, 4*time.Hour) {
			t.Errorf("server %d draining outside the window", i)
		}
	}
	if len(drainA) != 4 || len(deadA) != 3 {
		t.Fatalf("victim counts: %d draining, %d dead", len(drainA), len(deadA))
	}
	if !reflect.DeepEqual(drainA, drainB) {
		t.Error("same seed should pick the same drain victims")
	}
	for _, dr := range drainA {
		for _, d := range deadA {
			if dr == d {
				t.Errorf("server %d is both drain and kill victim; draws should not overlap", dr)
			}
		}
		if a.SlowFactor(dr) > 1 {
			t.Errorf("server %d is both drain victim and straggler", dr)
		}
	}
	a.CountNodeDrain()
	if a.Counts().NodeDrains != 1 {
		t.Errorf("NodeDrains = %d, want 1", a.Counts().NodeDrains)
	}

	// The drain clause renders last in the canonical form, after slow.
	full, err := faults.Parse("drain=1@1h+5m,slow=2:1.3,kill=1@2h+5m")
	if err != nil {
		t.Fatal(err)
	}
	canon := full.String()
	if !strings.HasSuffix(canon, "drain=1@1h0m0s+5m0s") {
		t.Errorf("canonical form should end with the drain clause: %q", canon)
	}

	// A nil injector never drains.
	var nilInj *faults.Injector
	if nilInj.ServerDraining(0, time.Hour) {
		t.Error("nil ServerDraining should be false")
	}
	nilInj.CountNodeDrain() // must not panic
}

// FuzzFaultSpec feeds arbitrary text through the parser: it must never
// panic, and any accepted spec must validate, render canonically, and
// round-trip through Parse → String → Parse to the same canonical form.
func FuzzFaultSpec(f *testing.F) {
	seeds := []string{
		"",
		"tdrop=0.05",
		"tspike=0.02:0.5",
		"tstuck=10h+30m,tblackout=4h+5m",
		"crash=6h+20,miss=0.01",
		"oobburst=11h+15m,ooblat=1.5",
		"kill=2@8h+1h,slow=2:1.3",
		"tdrop=0.05,tspike=0.02:0.5,tstuck=10h+30m,crash=6h+20,kill=2@8h+1h",
		"drain=2@4h+30m",
		"kill=2@8h+1h,drain=4@8h+1h",
		"tdrop=",
		"kill=@+",
		"drain=@+",
		"slow=1e300:2",
		"crash=9223372036854775807ns+1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := faults.Parse(text)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v (input %q)", err, text)
		}
		canon := s.String()
		if strings.TrimSpace(text) == "" && canon != "" {
			t.Fatalf("blank input produced non-empty canonical form %q", canon)
		}
		s2, err := faults.Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v (input %q)", canon, err, text)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q then %q (input %q)", canon, got, text)
		}
		// Scaling never produces an invalid spec.
		for _, f := range []float64{0, 0.25, 1, 3} {
			if err := s.Scale(f).Validate(); err != nil {
				t.Fatalf("Scale(%v) of %q invalid: %v", f, canon, err)
			}
		}
	})
}
