// Package faults is the deterministic fault-injection subsystem of the
// POLCA reproduction. The paper's §7 deployment discussion assumes the
// framework stays safe when its inputs break — SMBPBI telemetry is listed
// as "unreliable" in Table 1, OOB actuation fails silently (§3.3), and the
// UPS power brake exists precisely because everything above it can fail.
// This package models those failures so the simulator can prove the
// degradation paths hold, instead of only exercising the happy path.
//
// A Spec describes what to inject, in four classes:
//
//   - telemetry faults: per-tick sample dropout, stuck-at (frozen sensor)
//     windows, spike noise, and blackout windows where every sample is lost;
//   - controller faults: crashes (the controller is silent for N epochs and
//     cold-restarts with no state) and missed control ticks;
//   - OOB channel degradation: burst windows during which every in-flight
//     command fails silently, and latency inflation beyond the 40 s baseline;
//   - server faults: node death windows (the active request is lost) and
//     straggler nodes whose work is stretched by a constant factor.
//
// Specs round-trip through a compact textual DSL (Parse / Spec.String) so
// chaos scenarios can be passed on a command line and stamped into result
// provenance. An Injector is the runtime: it owns named random streams and
// window state, and every query is pure with respect to simulation state. A
// nil *Injector is a valid "no faults" instance, mirroring the obs package's
// nil-receiver contract, so the disabled path costs one branch.
//
// Determinism is load-bearing: the same seed and the same spec produce the
// same fault sequence, byte for byte, because all randomness derives from
// the engine's named streams and windows are fixed simulated-time intervals.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Window is a half-open interval [Start, Start+Dur) of simulated time.
type Window struct {
	Start time.Duration
	Dur   time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool {
	return t >= w.Start && t < w.Start+w.Dur
}

func (w Window) String() string { return fmt.Sprintf("%s+%s", w.Start, w.Dur) }

// Crash is one controller outage: at At the controller dies; it restarts,
// with cold state, after Epochs telemetry epochs of silence.
type Crash struct {
	At     time.Duration
	Epochs int
}

// Kill is one server-death window: Servers nodes are down for the window
// and revive cold (clocks unlocked, no state) when it ends.
type Kill struct {
	Servers int
	Window
}

// Spec describes a fault scenario. The zero value injects nothing.
type Spec struct {
	// Telemetry faults (the row-manager reading the controller consumes).
	DropProb  float64  // per-tick probability a sample is lost
	SpikeProb float64  // per-tick probability of a noise spike
	SpikeMag  float64  // relative spike magnitude (0.3 = ±30%)
	Stuck     []Window // frozen-sensor windows: the sensor repeats its last value
	Blackout  []Window // total telemetry loss windows

	// Controller faults.
	Crashes  []Crash // controller outages with cold restart
	MissProb float64 // per-tick probability the controller misses its tick

	// OOB channel degradation.
	Burst        []Window // commands issued inside a window fail silently
	LatencyScale float64  // multiplier on the OOB actuation latency (0 or 1 = off)

	// Server faults.
	Kills           []Kill  // node-death windows
	Stragglers      int     // nodes permanently slowed
	StragglerFactor float64 // work stretch for straggler nodes (1.3 = 30% slower)

	// Operator actions. Drains are graceful-drain (maintenance) windows:
	// the affected servers finish their in-flight work but refuse new
	// admissions for the window, then return to service. Unlike Kills,
	// nothing is lost — this models planned node maintenance, the benign
	// counterpart of a death window.
	Drains []Kill
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.DropProb > 0 || s.SpikeProb > 0 ||
		len(s.Stuck) > 0 || len(s.Blackout) > 0 ||
		len(s.Crashes) > 0 || s.MissProb > 0 ||
		len(s.Burst) > 0 || (s.LatencyScale != 0 && s.LatencyScale != 1) ||
		len(s.Kills) > 0 || (s.Stragglers > 0 && s.StragglerFactor > 1) ||
		len(s.Drains) > 0
}

// Validate reports whether the spec is coherent.
func (s Spec) Validate() error {
	switch {
	case s.DropProb < 0 || s.DropProb >= 1:
		return fmt.Errorf("faults: drop probability %v outside [0,1)", s.DropProb)
	case s.SpikeProb < 0 || s.SpikeProb >= 1:
		return fmt.Errorf("faults: spike probability %v outside [0,1)", s.SpikeProb)
	case s.SpikeProb > 0 && (s.SpikeMag <= 0 || s.SpikeMag > 2):
		return fmt.Errorf("faults: spike magnitude %v outside (0,2]", s.SpikeMag)
	case s.MissProb < 0 || s.MissProb >= 1:
		return fmt.Errorf("faults: miss probability %v outside [0,1)", s.MissProb)
	case s.LatencyScale < 0:
		return fmt.Errorf("faults: negative OOB latency scale %v", s.LatencyScale)
	case s.Stragglers < 0:
		return fmt.Errorf("faults: negative straggler count")
	case s.Stragglers > 0 && s.StragglerFactor < 1:
		return fmt.Errorf("faults: straggler factor %v below 1", s.StragglerFactor)
	}
	checkWindows := func(kind string, ws []Window) error {
		for _, w := range ws {
			if w.Start < 0 || w.Dur < 0 {
				return fmt.Errorf("faults: negative %s window %s", kind, w)
			}
		}
		return nil
	}
	if err := checkWindows("stuck", s.Stuck); err != nil {
		return err
	}
	if err := checkWindows("blackout", s.Blackout); err != nil {
		return err
	}
	if err := checkWindows("oob burst", s.Burst); err != nil {
		return err
	}
	for _, c := range s.Crashes {
		if c.At < 0 || c.Epochs < 0 {
			return fmt.Errorf("faults: bad crash at %v for %d epochs", c.At, c.Epochs)
		}
	}
	for _, k := range s.Kills {
		if k.Servers < 0 || k.Start < 0 || k.Dur < 0 {
			return fmt.Errorf("faults: bad kill of %d servers at %s", k.Servers, k.Window)
		}
	}
	for _, d := range s.Drains {
		if d.Servers < 0 || d.Start < 0 || d.Dur < 0 {
			return fmt.Errorf("faults: bad drain of %d servers at %s", d.Servers, d.Window)
		}
	}
	return nil
}

// Scale returns a copy with every fault intensity multiplied by f: the
// probabilistic rates scale directly, window durations stretch or shrink,
// and discrete counts (crash epochs, killed servers, stragglers) round to
// the nearest integer. Scale(0) disables everything; Scale(1) is identity.
// The figfault experiment sweeps this knob.
func (s Spec) Scale(f float64) Spec {
	if f < 0 {
		f = 0
	}
	scaleProb := func(p float64) float64 {
		p *= f
		if p > 0.99 {
			p = 0.99
		}
		return p
	}
	scaleWindows := func(ws []Window) []Window {
		var out []Window
		for _, w := range ws {
			if d := time.Duration(float64(w.Dur) * f); d > 0 {
				out = append(out, Window{Start: w.Start, Dur: d})
			}
		}
		return out
	}
	out := s
	out.DropProb = scaleProb(s.DropProb)
	out.SpikeProb = scaleProb(s.SpikeProb)
	out.MissProb = scaleProb(s.MissProb)
	out.Stuck = scaleWindows(s.Stuck)
	out.Blackout = scaleWindows(s.Blackout)
	out.Burst = scaleWindows(s.Burst)
	out.Crashes = nil
	for _, c := range s.Crashes {
		if n := int(math.Round(float64(c.Epochs) * f)); n > 0 {
			out.Crashes = append(out.Crashes, Crash{At: c.At, Epochs: n})
		}
	}
	out.Kills = nil
	for _, k := range s.Kills {
		n := int(math.Round(float64(k.Servers) * f))
		d := time.Duration(float64(k.Dur) * f)
		if n > 0 && d > 0 {
			out.Kills = append(out.Kills, Kill{Servers: n, Window: Window{Start: k.Start, Dur: d}})
		}
	}
	out.Drains = nil
	for _, d := range s.Drains {
		n := int(math.Round(float64(d.Servers) * f))
		dur := time.Duration(float64(d.Dur) * f)
		if n > 0 && dur > 0 {
			out.Drains = append(out.Drains, Kill{Servers: n, Window: Window{Start: d.Start, Dur: dur}})
		}
	}
	out.Stragglers = int(math.Round(float64(s.Stragglers) * f))
	if s.StragglerFactor > 1 {
		out.StragglerFactor = 1 + (s.StragglerFactor-1)*f
	}
	if out.LatencyScale != 0 && out.LatencyScale != 1 {
		out.LatencyScale = 1 + (s.LatencyScale-1)*f
		if out.LatencyScale < 0 {
			out.LatencyScale = 0
		}
	}
	if !out.Enabled() {
		return Spec{}
	}
	return out
}

// --- textual DSL ---

// Parse builds a Spec from its textual form: comma-separated key=value
// items. Keys (durations use Go syntax, "90m" or "1h30m"):
//
//	tdrop=P           telemetry sample dropout probability per tick
//	tspike=P:MAG      spike probability and relative magnitude
//	tstuck=START+DUR  frozen-sensor window (repeatable)
//	tblackout=START+DUR  telemetry blackout window (repeatable)
//	crash=START+N     controller crash at START, silent for N epochs (repeatable)
//	miss=P            missed control-tick probability
//	oobburst=START+DUR  OOB burst-failure window (repeatable)
//	ooblat=F          OOB latency multiplier (>= 0)
//	kill=K@START+DUR  K servers dead during the window (repeatable)
//	slow=K:F          K straggler servers with work stretched by F
//	drain=K@START+DUR K servers gracefully draining during the window
//	                  (maintenance: in-flight work finishes, admissions
//	                  refused; repeatable)
//
// An empty string parses to the zero Spec (no faults).
func Parse(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, item := range strings.Split(text, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q is not key=value", item)
		}
		var err error
		switch key {
		case "tdrop":
			s.DropProb, err = parseProb(val)
		case "tspike":
			s.SpikeProb, s.SpikeMag, err = parsePair(val)
		case "tstuck":
			err = appendWindow(&s.Stuck, val)
		case "tblackout":
			err = appendWindow(&s.Blackout, val)
		case "crash":
			var c Crash
			c, err = parseCrash(val)
			s.Crashes = append(s.Crashes, c)
		case "miss":
			s.MissProb, err = parseProb(val)
		case "oobburst":
			err = appendWindow(&s.Burst, val)
		case "ooblat":
			s.LatencyScale, err = parseFloat(val)
		case "kill":
			var k Kill
			k, err = parseKill(val)
			s.Kills = append(s.Kills, k)
		case "drain":
			var d Kill
			d, err = parseKill(val)
			s.Drains = append(s.Drains, d)
		case "slow":
			var f float64
			var n float64
			n, f, err = parsePair(val)
			s.Stragglers = int(n)
			s.StragglerFactor = f
			if err == nil && float64(s.Stragglers) != n {
				err = fmt.Errorf("faults: straggler count %v is not an integer", n)
			}
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faults: %s: %w", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// String renders the spec in the canonical DSL form: Parse(s.String()) is
// equivalent to s (windows are emitted in a stable sorted order).
func (s Spec) String() string {
	var items []string
	add := func(format string, args ...any) {
		items = append(items, fmt.Sprintf(format, args...))
	}
	if s.DropProb > 0 {
		add("tdrop=%s", trimFloat(s.DropProb))
	}
	if s.SpikeProb > 0 {
		add("tspike=%s:%s", trimFloat(s.SpikeProb), trimFloat(s.SpikeMag))
	}
	for _, w := range sortedWindows(s.Stuck) {
		add("tstuck=%s", w)
	}
	for _, w := range sortedWindows(s.Blackout) {
		add("tblackout=%s", w)
	}
	for _, c := range sortedCrashes(s.Crashes) {
		add("crash=%s+%d", c.At, c.Epochs)
	}
	if s.MissProb > 0 {
		add("miss=%s", trimFloat(s.MissProb))
	}
	for _, w := range sortedWindows(s.Burst) {
		add("oobburst=%s", w)
	}
	if s.LatencyScale != 0 && s.LatencyScale != 1 {
		add("ooblat=%s", trimFloat(s.LatencyScale))
	}
	for _, k := range sortedKills(s.Kills) {
		add("kill=%d@%s", k.Servers, k.Window)
	}
	if s.Stragglers > 0 && s.StragglerFactor > 1 {
		add("slow=%d:%s", s.Stragglers, trimFloat(s.StragglerFactor))
	}
	for _, d := range sortedKills(s.Drains) {
		add("drain=%d@%s", d.Servers, d.Window)
	}
	return strings.Join(items, ",")
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func sortedWindows(ws []Window) []Window {
	out := append([]Window(nil), ws...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Dur < out[b].Dur
	})
	return out
}

func sortedCrashes(cs []Crash) []Crash {
	out := append([]Crash(nil), cs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Epochs < out[b].Epochs
	})
	return out
}

func sortedKills(ks []Kill) []Kill {
	out := append([]Kill(nil), ks...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Servers < out[b].Servers
	})
	return out
}

func parseFloat(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("bad number %q", val)
	}
	return f, nil
}

func parseProb(val string) (float64, error) {
	p, err := parseFloat(val)
	if err != nil {
		return 0, err
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("probability %v outside [0,1)", p)
	}
	return p, nil
}

// parsePair parses "A:B" into two floats.
func parsePair(val string) (float64, float64, error) {
	a, b, ok := strings.Cut(val, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q is not A:B", val)
	}
	fa, err := parseFloat(a)
	if err != nil {
		return 0, 0, err
	}
	fb, err := parseFloat(b)
	if err != nil {
		return 0, 0, err
	}
	return fa, fb, nil
}

// parseWindow parses "START+DUR" with Go duration syntax.
func parseWindow(val string) (Window, error) {
	start, dur, ok := strings.Cut(val, "+")
	if !ok {
		return Window{}, fmt.Errorf("%q is not START+DUR", val)
	}
	ds, err := time.ParseDuration(start)
	if err != nil {
		return Window{}, fmt.Errorf("bad start: %w", err)
	}
	dd, err := time.ParseDuration(dur)
	if err != nil {
		return Window{}, fmt.Errorf("bad duration: %w", err)
	}
	return Window{Start: ds, Dur: dd}, nil
}

func appendWindow(ws *[]Window, val string) error {
	w, err := parseWindow(val)
	if err != nil {
		return err
	}
	*ws = append(*ws, w)
	return nil
}

// parseCrash parses "START+N" where N is an epoch count.
func parseCrash(val string) (Crash, error) {
	start, epochs, ok := strings.Cut(val, "+")
	if !ok {
		return Crash{}, fmt.Errorf("%q is not START+EPOCHS", val)
	}
	at, err := time.ParseDuration(start)
	if err != nil {
		return Crash{}, fmt.Errorf("bad start: %w", err)
	}
	n, err := strconv.Atoi(epochs)
	if err != nil {
		return Crash{}, fmt.Errorf("bad epoch count: %w", err)
	}
	return Crash{At: at, Epochs: n}, nil
}

// parseKill parses "K@START+DUR".
func parseKill(val string) (Kill, error) {
	count, win, ok := strings.Cut(val, "@")
	if !ok {
		return Kill{}, fmt.Errorf("%q is not K@START+DUR", val)
	}
	k, err := strconv.Atoi(count)
	if err != nil {
		return Kill{}, fmt.Errorf("bad server count: %w", err)
	}
	w, err := parseWindow(win)
	if err != nil {
		return Kill{}, err
	}
	return Kill{Servers: k, Window: w}, nil
}

// --- runtime ---

// Counts aggregates how many faults of each class were actually injected,
// for run reports and reconciliation against trace events.
type Counts struct {
	TelemetryLost   int // dropped or blacked-out samples
	TelemetryStuck  int // samples frozen by a stuck window
	TelemetrySpiked int // samples with spike noise applied
	CtrlCrashTicks  int // epochs the controller was down
	CtrlMissedTicks int // isolated missed control ticks
	OOBBurstFails   int // commands failed by a burst window
	NodeDeaths      int // node down-transitions
	NodeDrains      int // graceful-drain window entries
}

// Injector is the runtime of one Spec on one simulated row. All randomness
// comes from streams handed in at construction (the engine's named
// streams), so runs are deterministic per (seed, spec). A nil *Injector
// injects nothing and every method is safe to call on it.
//
// The injector is passive: it never schedules events or touches simulation
// state; the row queries it at its own decision points.
type Injector struct {
	spec     Spec
	telemRNG *rand.Rand
	ctrlRNG  *rand.Rand

	dead      [][]int // node indices killed by each Kill window, precomputed
	draining  [][]int // node indices drained by each Drain window, precomputed
	straggler map[int]bool

	counts Counts
}

// New builds an Injector for a row of servers nodes. rnd returns a named
// deterministic stream (pass the sim engine's Rand method); the injector
// draws the streams "faults/telemetry", "faults/controller", and
// "faults/servers". It returns nil — the disabled injector — when the spec
// injects nothing, so construction is safe to do unconditionally.
func New(spec Spec, servers int, rnd func(name string) *rand.Rand) *Injector {
	if !spec.Enabled() {
		return nil
	}
	inj := &Injector{
		spec:      spec,
		telemRNG:  rnd("faults/telemetry"),
		ctrlRNG:   rnd("faults/controller"),
		straggler: map[int]bool{},
	}
	// Pre-draw the victim sets so per-tick queries are RNG-free: a stable
	// permutation of node indices, consumed first by stragglers, then by
	// each kill window in spec order.
	perm := rnd("faults/servers").Perm(servers)
	next := 0
	take := func(n int) []int {
		if n > servers {
			n = servers
		}
		out := make([]int, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, perm[next%servers])
			next++
		}
		return out
	}
	for _, idx := range take(spec.Stragglers) {
		inj.straggler[idx] = true
	}
	for _, k := range spec.Kills {
		inj.dead = append(inj.dead, take(k.Servers))
	}
	// Drain victims draw after every pre-existing consumer, so adding a
	// drain action to a spec leaves the straggler and kill victim sets —
	// and therefore every existing scenario — byte-identical.
	for _, d := range spec.Drains {
		inj.draining = append(inj.draining, take(d.Servers))
	}
	return inj
}

// Spec returns the injector's spec (zero for a nil injector).
func (inj *Injector) Spec() Spec {
	if inj == nil {
		return Spec{}
	}
	return inj.spec
}

// Counts returns the injected-fault tallies so far.
func (inj *Injector) Counts() Counts {
	if inj == nil {
		return Counts{}
	}
	return inj.counts
}

func inWindows(ws []Window, t time.Duration) bool {
	for _, w := range ws {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// Telemetry passes one row-manager sample through the telemetry fault
// model. trueUtil is the physically measured utilization; last is the
// previous reading delivered to the controller (used by stuck-at windows)
// and haveLast reports whether one exists. It returns the possibly
// corrupted reading and whether the sample was delivered at all.
func (inj *Injector) Telemetry(now time.Duration, trueUtil, last float64, haveLast bool) (float64, bool) {
	if inj == nil {
		return trueUtil, true
	}
	s := inj.spec
	if inWindows(s.Blackout, now) {
		inj.counts.TelemetryLost++
		return 0, false
	}
	if s.DropProb > 0 && inj.telemRNG.Float64() < s.DropProb {
		inj.counts.TelemetryLost++
		return 0, false
	}
	if haveLast && inWindows(s.Stuck, now) {
		inj.counts.TelemetryStuck++
		return last, true
	}
	if s.SpikeProb > 0 && inj.telemRNG.Float64() < s.SpikeProb {
		inj.counts.TelemetrySpiked++
		// Symmetric noise: downward spikes are as dangerous as upward ones
		// (they can uncap a row that is actually hot).
		return trueUtil * (1 + s.SpikeMag*(2*inj.telemRNG.Float64()-1)), true
	}
	return trueUtil, true
}

// ControllerDown reports whether the controller is inside a crash outage at
// now. epoch is the telemetry interval, which converts Crash.Epochs into a
// window.
func (inj *Injector) ControllerDown(now, epoch time.Duration) bool {
	if inj == nil {
		return false
	}
	for _, c := range inj.spec.Crashes {
		if now >= c.At && now < c.At+time.Duration(c.Epochs)*epoch {
			inj.counts.CtrlCrashTicks++
			return true
		}
	}
	return false
}

// MissedTick draws whether the controller misses this control tick.
func (inj *Injector) MissedTick() bool {
	if inj == nil || inj.spec.MissProb == 0 {
		return false
	}
	if inj.ctrlRNG.Float64() < inj.spec.MissProb {
		inj.counts.CtrlMissedTicks++
		return true
	}
	return false
}

// OOBBurstFailure reports whether a command issued at now is doomed by a
// burst-failure window (it will fail silently at landing, like §3.3's
// failures, regardless of the baseline failure probability).
func (inj *Injector) OOBBurstFailure(now time.Duration) bool {
	if inj == nil {
		return false
	}
	if inWindows(inj.spec.Burst, now) {
		inj.counts.OOBBurstFails++
		return true
	}
	return false
}

// OOBLatency applies the spec's latency inflation to the base actuation
// latency.
func (inj *Injector) OOBLatency(base time.Duration) time.Duration {
	if inj == nil || inj.spec.LatencyScale == 0 || inj.spec.LatencyScale == 1 {
		return base
	}
	return time.Duration(float64(base) * inj.spec.LatencyScale)
}

// ServerDead reports whether node idx is inside a kill window at now.
func (inj *Injector) ServerDead(idx int, now time.Duration) bool {
	if inj == nil {
		return false
	}
	for ki, k := range inj.spec.Kills {
		if !k.Contains(now) {
			continue
		}
		for _, victim := range inj.dead[ki] {
			if victim == idx {
				return true
			}
		}
	}
	return false
}

// CountNodeDeath records one node down-transition (the row detects the
// transition; the injector only supplies the schedule).
func (inj *Injector) CountNodeDeath() {
	if inj != nil {
		inj.counts.NodeDeaths++
	}
}

// ServerDraining reports whether node idx is inside a graceful-drain
// (maintenance) window at now.
func (inj *Injector) ServerDraining(idx int, now time.Duration) bool {
	if inj == nil {
		return false
	}
	for di, d := range inj.spec.Drains {
		if !d.Contains(now) {
			continue
		}
		for _, victim := range inj.draining[di] {
			if victim == idx {
				return true
			}
		}
	}
	return false
}

// CountNodeDrain records one drain window entry (the row detects the
// transition, as with CountNodeDeath).
func (inj *Injector) CountNodeDrain() {
	if inj != nil {
		inj.counts.NodeDrains++
	}
}

// SlowFactor returns the work stretch for node idx (1 when not a
// straggler).
func (inj *Injector) SlowFactor(idx int) float64 {
	if inj == nil || !inj.straggler[idx] {
		return 1
	}
	return inj.spec.StragglerFactor
}
