package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"time"
)

// TestRandMatchesHistoricalStreams locks Engine.Rand to the stream the
// original fmt.Fprintf+fnv implementation produced, so seeded tests and
// recorded experiment outputs don't churn.
func TestRandMatchesHistoricalStreams(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		for _, name := range []string{"", "arrivals", "ref", "workload/7"} {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d/%s", seed, name)
			want := rand.New(rand.NewSource(int64(h.Sum64())))
			got := New(seed).Rand(name)
			for i := 0; i < 5; i++ {
				if g, w := got.Int63(), want.Int63(); g != w {
					t.Fatalf("seed %d name %q draw %d: got %d, want %d", seed, name, i, g, w)
				}
			}
		}
	}
}

func TestPendingCountsLiveEventsOnly(t *testing.T) {
	e := New(1)
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, e.AfterCancelable(time.Hour, func(Time) {}))
	}
	e.At(time.Minute, func(Time) {})
	if e.Pending() != 11 {
		t.Fatalf("Pending = %d, want 11", e.Pending())
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if e.Pending() != 1 {
		t.Errorf("Pending after Stop = %d, want 1 (tombstones must not count)", e.Pending())
	}
}

// TestCompaction checks that canceled events are physically removed once
// they outnumber live ones, instead of lingering until their deadline.
func TestCompaction(t *testing.T) {
	e := New(1)
	fired := 0
	for i := 0; i < 50; i++ {
		e.At(time.Duration(i+1)*time.Minute, func(Time) { fired++ })
	}
	var timers []Timer
	for i := 0; i < 200; i++ {
		timers = append(timers, e.AfterCancelable(time.Duration(i+1)*time.Hour, func(Time) { fired = -1000 }))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if e.Pending() != 50 {
		t.Errorf("Pending = %d, want 50", e.Pending())
	}
	if len(e.queue) > 100 {
		t.Errorf("queue holds %d entries after mass cancellation, want compacted (< 100)", len(e.queue))
	}
	// Dispatch order of the survivors is intact after compaction.
	e.RunUntil(24 * time.Hour)
	if fired != 50 {
		t.Errorf("fired = %d, want 50", fired)
	}
	if len(e.queue) != 0 || e.tombstones != 0 {
		t.Errorf("queue=%d tombstones=%d after drain, want 0/0", len(e.queue), e.tombstones)
	}
}

// TestTimerSlotReuse: a stale Timer handle must not cancel the timer that
// recycled its slot.
func TestTimerSlotReuse(t *testing.T) {
	e := New(1)
	first := e.AfterCancelable(time.Second, func(Time) {})
	e.RunUntil(2 * time.Second) // fires; slot retires to the free list
	fired := false
	second := e.AfterCancelable(time.Second, func(Time) { fired = true })
	first.Stop() // stale handle: must be a no-op on the recycled slot
	e.RunUntil(time.Minute)
	if !fired {
		t.Error("stale Stop canceled an unrelated timer")
	}
	second.Stop() // after firing: idempotent no-op
}

// TestEveryStopReleasesSlot: stopping a repeating timer inside its own
// handler frees the slot for reuse and halts the repetition.
func TestEveryStopReleasesSlot(t *testing.T) {
	e := New(1)
	n := 0
	var tm Timer
	tm = e.Every(time.Second, func(Time) {
		n++
		if n == 3 {
			tm.Stop()
		}
	})
	e.RunUntil(time.Minute)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	if len(e.freeTimers) != 1 {
		t.Errorf("free list = %d slots, want 1 (stopped timer not recycled)", len(e.freeTimers))
	}
	tm.Stop() // idempotent on the freed slot
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

// TestCanceledEventsStayOutOfDispatch mass-cancels interleaved with live
// events and verifies order and count of the survivors.
func TestCanceledEventsStayOutOfDispatch(t *testing.T) {
	e := New(7)
	var got []int
	for i := 0; i < 300; i++ {
		i := i
		at := time.Duration(1+i%17) * time.Second
		if i%3 == 0 {
			e.At(at, func(Time) { got = append(got, i) })
		} else {
			tm := e.AfterCancelable(at, func(Time) { t.Errorf("canceled event %d fired", i) })
			tm.Stop()
		}
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("live events fired = %d, want 100", len(got))
	}
	// (at, seq) order: same-instant survivors keep insertion order.
	last := -1
	for _, i := range got {
		if i%17 == got[0]%17 && i < last {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
		last = i
	}
}

// TestQueueSteadyStateNoGrowth: a self-rescheduling workload reuses the
// queue's backing array instead of allocating per event.
func TestQueueSteadyStateNoGrowth(t *testing.T) {
	e := New(1)
	n := 0
	var tick Handler
	tick = func(Time) {
		n++
		if n < 10000 {
			e.After(time.Millisecond, tick)
		}
	}
	e.After(time.Millisecond, tick)
	allocs := testing.AllocsPerRun(1, func() {
		e.Run()
	})
	if n != 10000 {
		t.Fatalf("dispatched %d", n)
	}
	// One warm-up growth of the slice may happen; per-event allocation would
	// show thousands.
	if allocs > 10 {
		t.Errorf("Run allocated %.0f times for 10k events, want ~0", allocs)
	}
}
