// Package sim implements the deterministic discrete-event simulation engine
// underlying the POLCA reproduction. The engine keeps a virtual clock and a
// priority queue of pending events; all model code — GPUs, servers, power
// managers, request schedulers — runs as event handlers against this clock.
//
// Determinism is a design goal (the paper's evaluation requires replaying
// identical six-week traces across policies): events scheduled for the same
// instant fire in scheduling order, and all randomness is derived from named
// streams seeded from the engine's root seed. No wall-clock time is read
// anywhere in the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is an instant on the simulation clock, measured as a duration from
// the start of the simulation. Using time.Duration (integer nanoseconds)
// keeps six-week simulations free of floating-point drift.
type Time = time.Duration

// Handler is an event callback. It runs at its scheduled virtual time and
// may schedule further events.
type Handler func(now Time)

// event is an entry in the engine's queue.
type event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among events at the same instant
	fn     Handler
	cancel *bool // non-nil when the event belongs to a cancelable timer
	index  int
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with New.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	seed    int64
	running bool
}

// New returns an Engine whose clock starts at zero and whose random streams
// derive from seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the engine's root seed.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns a deterministic random stream derived from the engine seed
// and the given name. Distinct names yield independent streams; calling
// Rand twice with the same name returns streams with identical sequences,
// so callers should create each stream once and retain it.
func (e *Engine) Rand(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", e.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn Handler) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn Handler) {
	e.At(e.now+d, fn)
}

// Timer is a handle to a cancelable scheduled or repeating event.
type Timer struct {
	canceled *bool
}

// Stop cancels the timer. Events already dispatched are unaffected. Stop is
// idempotent and safe on the zero Timer.
func (t Timer) Stop() {
	if t.canceled != nil {
		*t.canceled = true
	}
}

// AfterCancelable schedules fn after d and returns a Timer that can cancel
// it before it fires.
func (e *Engine) AfterCancelable(d time.Duration, fn Handler) Timer {
	canceled := new(bool)
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + d, seq: e.seq, fn: fn, cancel: canceled})
	return Timer{canceled: canceled}
}

// Every schedules fn to run at now+period, then every period thereafter,
// until the returned Timer is stopped. period must be positive.
func (e *Engine) Every(period time.Duration, fn Handler) Timer {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	canceled := new(bool)
	var tick Handler
	tick = func(now Time) {
		if *canceled {
			return
		}
		fn(now)
		if *canceled {
			return
		}
		e.seq++
		heap.Push(&e.queue, &event{at: now + period, seq: e.seq, fn: tick, cancel: canceled})
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + period, seq: e.seq, fn: tick, cancel: canceled})
	return Timer{canceled: canceled}
}

// EveryFrom is like Every but fires the first tick at start (an absolute
// time >= Now) instead of now+period.
func (e *Engine) EveryFrom(start Time, period time.Duration, fn Handler) Timer {
	if period <= 0 {
		panic("sim: EveryFrom with non-positive period")
	}
	canceled := new(bool)
	var tick Handler
	tick = func(now Time) {
		if *canceled {
			return
		}
		fn(now)
		if *canceled {
			return
		}
		e.seq++
		heap.Push(&e.queue, &event{at: now + period, seq: e.seq, fn: tick, cancel: canceled})
	}
	if start < e.now {
		panic(fmt.Sprintf("sim: EveryFrom start %v before now %v", start, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: start, seq: e.seq, fn: tick, cancel: canceled})
	return Timer{canceled: canceled}
}

// Step dispatches the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancel != nil && *ev.cancel {
			continue
		}
		e.now = ev.at
		ev.fn(ev.at)
		return true
	}
	return false
}

// RunUntil dispatches events in timestamp order until the queue is empty or
// the next event is strictly after deadline. The clock is left at the later
// of its current value and deadline, so back-to-back RunUntil calls advance
// time monotonically even across idle gaps.
func (e *Engine) RunUntil(deadline Time) {
	if e.running {
		panic("sim: reentrant RunUntil")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancel != nil && *next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn(next.at)
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Run dispatches all pending events until the queue is empty. Use with
// care: self-rescheduling timers make the queue inexhaustible; prefer
// RunUntil for simulations that contain periodic tasks.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return e.queue.Len() }
