// Package sim implements the deterministic discrete-event simulation engine
// underlying the POLCA reproduction. The engine keeps a virtual clock and a
// priority queue of pending events; all model code — GPUs, servers, power
// managers, request schedulers — runs as event handlers against this clock.
//
// Determinism is a design goal (the paper's evaluation requires replaying
// identical six-week traces across policies): events scheduled for the same
// instant fire in scheduling order, and all randomness is derived from named
// streams seeded from the engine's root seed. No wall-clock time is read
// anywhere in the simulation.
//
// The event queue is a value-based 4-ary min-heap ordered by (time, seq):
// events are plain structs stored in a reusable slice, so the steady-state
// schedule/dispatch path performs no allocation. Cancelable timers use
// generation-stamped slots instead of per-timer flag allocations; Timer.Stop
// is O(1), canceled events are counted as tombstones, and the queue compacts
// itself when tombstones outnumber live events, so a six-week simulation
// that starts and cancels millions of phase timers stays lean.
package sim

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"polca/internal/obs"
)

// Time is an instant on the simulation clock, measured as a duration from
// the start of the simulation. Using time.Duration (integer nanoseconds)
// keeps six-week simulations free of floating-point drift.
type Time = time.Duration

// Handler is an event callback. It runs at its scheduled virtual time and
// may schedule further events.
type Handler func(now Time)

// event is an entry in the engine's queue. Events are stored by value in
// the heap slice; noTimer marks events that cannot be canceled.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	fn    Handler
	timer int32 // slot index in Engine.timers, or noTimer
}

const noTimer int32 = -1

// timerSlot is the engine-side state of one cancelable timer. Slots are
// recycled through a free list; gen distinguishes the current occupant from
// stale Timer handles to an earlier one, which makes Stop idempotent and
// safe after slot reuse.
type timerSlot struct {
	gen     uint32
	queued  int32 // events currently in the queue referencing this slot
	stopped bool
	oneshot bool // AfterCancelable timers retire when their event fires
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with New.
type Engine struct {
	now        Time
	seq        uint64
	queue      []event // 4-ary min-heap ordered by (at, seq)
	timers     []timerSlot
	freeTimers []int32
	tombstones int // queued events whose timer has been stopped
	seed       int64
	running    bool
	events     uint64 // events dispatched, counted unconditionally

	// Observability. The observer is injected by the run harness and handed
	// down to every layer built on this engine; dispatched is cached at
	// SetObserver time so the per-event cost with observability off is one
	// nil-receiver branch (see BenchmarkTracerDisabled).
	obs        *obs.Observer
	dispatched *obs.Counter
}

// New returns an Engine whose clock starts at zero and whose random streams
// derive from seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Dispatched returns the number of events the engine has dispatched since
// construction. Unlike the observer counter it is always on, so benchmark
// harnesses can report events/sec without attaching an observer.
func (e *Engine) Dispatched() uint64 { return e.events }

// SetObserver attaches an observability sink to the engine. Layers built on
// the engine (cluster rows, policies) read it back with Observer. A nil
// observer (the default) disables all instrumentation. Observation never
// perturbs simulation state: nothing reached through the observer touches
// the engine's clock, queue, or random streams.
func (e *Engine) SetObserver(o *obs.Observer) {
	e.obs = o
	e.dispatched = o.Counter("sim_events_dispatched_total")
}

// Observer returns the observer attached with SetObserver, or nil.
func (e *Engine) Observer() *obs.Observer { return e.obs }

// Seed returns the engine's root seed.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns a deterministic random stream derived from the engine seed
// and the given name. Distinct names yield independent streams; calling
// Rand twice with the same name returns streams with identical sequences,
// so callers should create each stream once and retain it.
func (e *Engine) Rand(name string) *rand.Rand {
	// FNV-1a over the decimal seed, '/', and the name — the exact bytes the
	// original fmt.Fprintf(h, "%d/%s", seed, name) implementation hashed,
	// so every (seed, name) pair keeps its historical stream.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var buf [20]byte
	h := uint64(offset64)
	for _, c := range strconv.AppendInt(buf[:0], e.seed, 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '/') * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return rand.New(rand.NewSource(int64(h)))
}

// --- queue (value-based 4-ary min-heap) ---

const arity = 4

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// schedule pushes an event; timer is a slot index or noTimer.
func (e *Engine) schedule(at Time, fn Handler, timer int32) {
	e.seq++
	ev := event{at: at, seq: e.seq, fn: fn, timer: timer}
	if timer != noTimer {
		e.timers[timer].queued++
	}
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

func (e *Engine) siftUp(i int) {
	ev := e.queue[i]
	for i > 0 {
		p := (i - 1) / arity
		if !eventLess(&ev, &e.queue[p]) {
			break
		}
		e.queue[i] = e.queue[p]
		i = p
	}
	e.queue[i] = ev
}

func (e *Engine) siftDown(i int) {
	n := len(e.queue)
	ev := e.queue[i]
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		min := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&e.queue[c], &e.queue[min]) {
				min = c
			}
		}
		if !eventLess(&e.queue[min], &ev) {
			break
		}
		e.queue[i] = e.queue[min]
		i = min
	}
	e.queue[i] = ev
}

func (e *Engine) popMin() event {
	min := e.queue[0]
	n := len(e.queue) - 1
	last := e.queue[n]
	e.queue[n] = event{} // release the handler for GC
	e.queue = e.queue[:n]
	if n > 0 {
		e.queue[0] = last
		e.siftDown(0)
	}
	return min
}

// settle performs the timer bookkeeping for a popped event and reports
// whether the event is live and should be dispatched.
func (e *Engine) settle(ev *event) bool {
	if ev.timer == noTimer {
		return true
	}
	s := &e.timers[ev.timer]
	s.queued--
	if s.stopped {
		e.tombstones--
		if s.queued == 0 {
			e.freeTimerSlot(ev.timer)
		}
		return false
	}
	if s.oneshot {
		// The one-shot fired: retire the slot so a later Stop is a no-op.
		s.stopped = true
		e.freeTimerSlot(ev.timer)
	}
	return true
}

// maybeCompact rebuilds the heap without its canceled events once they
// outnumber the live ones. The floor avoids rescanning tiny queues where
// tombstones drain naturally through dispatch.
func (e *Engine) maybeCompact() {
	const minTombstones = 16
	if e.tombstones < minTombstones || e.tombstones*2 <= len(e.queue) {
		return
	}
	w := 0
	for _, ev := range e.queue {
		if ev.timer != noTimer {
			if s := &e.timers[ev.timer]; s.stopped {
				s.queued--
				if s.queued == 0 {
					e.freeTimerSlot(ev.timer)
				}
				continue
			}
		}
		e.queue[w] = ev
		w++
	}
	for i := w; i < len(e.queue); i++ {
		e.queue[i] = event{}
	}
	e.queue = e.queue[:w]
	e.tombstones = 0
	if w > 1 { // (w-2)/arity truncates to 0 for w < 2, which would sift an empty heap
		for i := (w - 2) / arity; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// --- timer slots ---

func (e *Engine) newTimerSlot(oneshot bool) (int32, uint32) {
	var id int32
	if n := len(e.freeTimers); n > 0 {
		id = e.freeTimers[n-1]
		e.freeTimers = e.freeTimers[:n-1]
	} else {
		e.timers = append(e.timers, timerSlot{})
		id = int32(len(e.timers) - 1)
	}
	s := &e.timers[id]
	s.queued = 0
	s.stopped = false
	s.oneshot = oneshot
	return id, s.gen
}

// freeTimerSlot recycles a slot; bumping gen invalidates outstanding Timer
// handles and tick closures that still reference it.
func (e *Engine) freeTimerSlot(id int32) {
	e.timers[id].gen++
	e.freeTimers = append(e.freeTimers, id)
}

func (e *Engine) timerActive(id int32, gen uint32) bool {
	s := &e.timers[id]
	return s.gen == gen && !s.stopped
}

// --- scheduling API ---

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn Handler) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.schedule(at, fn, noTimer)
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d time.Duration, fn Handler) {
	e.At(e.now+d, fn)
}

// Timer is a handle to a cancelable scheduled or repeating event.
type Timer struct {
	e   *Engine
	id  int32
	gen uint32
}

// Stop cancels the timer in O(1). Events already dispatched are unaffected.
// Stop is idempotent and safe on the zero Timer.
func (t Timer) Stop() {
	if t.e == nil {
		return
	}
	s := &t.e.timers[t.id]
	if s.gen != t.gen || s.stopped {
		return
	}
	s.stopped = true
	if s.queued == 0 {
		t.e.freeTimerSlot(t.id)
		return
	}
	t.e.tombstones += int(s.queued)
	t.e.maybeCompact()
}

// AfterCancelable schedules fn after d and returns a Timer that can cancel
// it before it fires.
func (e *Engine) AfterCancelable(d time.Duration, fn Handler) Timer {
	id, gen := e.newTimerSlot(true)
	e.schedule(e.now+d, fn, id)
	return Timer{e: e, id: id, gen: gen}
}

// Every schedules fn to run at now+period, then every period thereafter,
// until the returned Timer is stopped. period must be positive.
func (e *Engine) Every(period time.Duration, fn Handler) Timer {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	return e.startRepeating(e.now+period, period, fn)
}

// EveryFrom is like Every but fires the first tick at start (an absolute
// time >= Now) instead of now+period.
func (e *Engine) EveryFrom(start Time, period time.Duration, fn Handler) Timer {
	if period <= 0 {
		panic("sim: EveryFrom with non-positive period")
	}
	if start < e.now {
		panic(fmt.Sprintf("sim: EveryFrom start %v before now %v", start, e.now))
	}
	return e.startRepeating(start, period, fn)
}

func (e *Engine) startRepeating(first Time, period time.Duration, fn Handler) Timer {
	id, gen := e.newTimerSlot(false)
	var tick Handler
	tick = func(now Time) {
		fn(now)
		// fn may have stopped the timer (freeing, and possibly recycling,
		// the slot); the generation check catches both.
		if e.timerActive(id, gen) {
			e.schedule(now+period, tick, id)
		}
	}
	e.schedule(first, tick, id)
	return Timer{e: e, id: id, gen: gen}
}

// --- dispatch ---

// Step dispatches the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.popMin()
		if !e.settle(&ev) {
			continue
		}
		e.now = ev.at
		e.events++
		e.dispatched.Inc()
		ev.fn(ev.at)
		return true
	}
	return false
}

// RunUntil dispatches events in timestamp order until the queue is empty or
// the next event is strictly after deadline. The clock is left at the later
// of its current value and deadline, so back-to-back RunUntil calls advance
// time monotonically even across idle gaps.
func (e *Engine) RunUntil(deadline Time) {
	if e.running {
		panic("sim: reentrant RunUntil")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := &e.queue[0]
		if next.timer != noTimer && e.timers[next.timer].stopped {
			ev := e.popMin()
			e.settle(&ev)
			continue
		}
		if next.at > deadline {
			break
		}
		ev := e.popMin()
		if !e.settle(&ev) {
			continue
		}
		e.now = ev.at
		e.events++
		e.dispatched.Inc()
		ev.fn(ev.at)
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Run dispatches all pending events until the queue is empty. Use with
// care: self-rescheduling timers make the queue inexhaustible; prefer
// RunUntil for simulations that contain periodic tasks.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of live (non-canceled) scheduled events.
func (e *Engine) Pending() int { return len(e.queue) - e.tombstones }
