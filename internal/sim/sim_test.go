package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.At(3*time.Second, func(Time) { got = append(got, 3) })
	e.At(1*time.Second, func(Time) { got = append(got, 1) })
	e.At(2*time.Second, func(Time) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New(1)
	var at Time
	e.After(5*time.Second, func(now Time) {
		at = now
		e.After(2*time.Second, func(now Time) { at = now })
	})
	e.Run()
	if at != 7*time.Second {
		t.Errorf("nested After fired at %v, want 7s", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.At(time.Second, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(0, func(Time) {})
}

func TestEvery(t *testing.T) {
	e := New(1)
	var ticks []Time
	tm := e.Every(time.Second, func(now Time) { ticks = append(ticks, now) })
	e.RunUntil(3500 * time.Millisecond)
	tm.Stop()
	e.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, want := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		if ticks[i] != want {
			t.Errorf("tick[%d] = %v, want %v", i, ticks[i], want)
		}
	}
}

func TestEveryFrom(t *testing.T) {
	e := New(1)
	var ticks []Time
	e.EveryFrom(0, 2*time.Second, func(now Time) { ticks = append(ticks, now) })
	e.RunUntil(5 * time.Second)
	want := []Time{0, 2 * time.Second, 4 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick[%d] = %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTimerStopInsideHandler(t *testing.T) {
	e := New(1)
	n := 0
	var tm Timer
	tm = e.Every(time.Second, func(Time) {
		n++
		if n == 2 {
			tm.Stop()
		}
	})
	e.RunUntil(time.Minute)
	if n != 2 {
		t.Errorf("ticks after self-stop = %d, want 2", n)
	}
}

func TestAfterCancelable(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterCancelable(time.Second, func(Time) { fired = true })
	tm.Stop()
	e.RunUntil(time.Minute)
	if fired {
		t.Error("canceled event fired")
	}
	// Zero Timer Stop is a no-op.
	Timer{}.Stop()
}

func TestRunUntilAdvancesClockThroughIdle(t *testing.T) {
	e := New(1)
	e.RunUntil(time.Hour)
	if e.Now() != time.Hour {
		t.Errorf("Now = %v, want 1h", e.Now())
	}
	// Deadline before now leaves the clock alone.
	e.RunUntil(time.Minute)
	if e.Now() != time.Hour {
		t.Errorf("Now regressed to %v", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := New(1)
	fired := false
	e.At(2*time.Second, func(Time) { fired = true })
	e.RunUntil(time.Second)
	if fired {
		t.Error("event after deadline fired early")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(3 * time.Second)
	if !fired {
		t.Error("event never fired")
	}
}

func TestRandDeterminismAndIndependence(t *testing.T) {
	a := New(42).Rand("arrivals")
	b := New(42).Rand("arrivals")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed+name streams diverge")
		}
	}
	c := New(42).Rand("noise")
	d := New(42).Rand("arrivals")
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different names produced identical streams")
	}
	e := New(43).Rand("arrivals")
	f := New(42).Rand("arrivals")
	same = true
	for i := 0; i < 10; i++ {
		if e.Int63() != f.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// Property: for any batch of randomly-timed events, dispatch order is the
// stable sort by time (ties broken by insertion order).
func TestDispatchOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		e := New(seed)
		n := 2 + int(seed%53+53)%53
		type item struct {
			at  Time
			idx int
		}
		items := make([]item, n)
		var got []int
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(20)) * time.Second
			items[i] = item{at, i}
			i := i
			e.At(at, func(Time) { got = append(got, i) })
		}
		sort.SliceStable(items, func(a, b int) bool { return items[a].at < items[b].at })
		e.Run()
		for i := range items {
			if got[i] != items[i].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the clock never moves backwards during dispatch.
func TestClockMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		e := New(seed)
		ok := true
		last := Time(-1)
		for i := 0; i < 40; i++ {
			at := Time(rng.Intn(1000)) * time.Millisecond
			e.At(at, func(now Time) {
				if now < last {
					ok = false
				}
				last = now
				// Handlers may schedule relative follow-ups.
				if rng.Intn(3) == 0 {
					e.After(time.Duration(rng.Intn(100))*time.Millisecond, func(now2 Time) {
						if now2 < last {
							ok = false
						}
						last = now2
					})
				}
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New(1)
	var recovered any
	e.At(time.Second, func(Time) {
		defer func() { recovered = recover() }()
		e.RunUntil(2 * time.Second)
	})
	e.RunUntil(time.Minute)
	if recovered == nil {
		t.Error("reentrant RunUntil should panic")
	}
}
