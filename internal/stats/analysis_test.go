package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAutocorrelation(t *testing.T) {
	// A pure sine has autocorrelation ~1 at its period and ~-1 at half.
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 100)
	}
	r1, err := Autocorrelation(xs, 100)
	if err != nil || r1 < 0.95 {
		t.Errorf("period lag r = %v, %v", r1, err)
	}
	r2, err := Autocorrelation(xs, 50)
	if err != nil || r2 > -0.95 {
		t.Errorf("half-period lag r = %v, %v", r2, err)
	}
	if _, err := Autocorrelation(xs, 0); err == nil {
		t.Error("zero lag should error")
	}
	if _, err := Autocorrelation(xs[:3], 5); err == nil {
		t.Error("short input should error")
	}
}

func TestSeriesAutocorrelation(t *testing.T) {
	s := Series{Step: time.Second, Values: make([]float64, 600)}
	for i := range s.Values {
		s.Values[i] = math.Sin(2 * math.Pi * float64(i) / 60)
	}
	r, err := s.Autocorrelation(time.Minute)
	if err != nil || r < 0.95 {
		t.Errorf("1-minute lag r = %v, %v", r, err)
	}
	if _, err := (Series{}).Autocorrelation(time.Second); err == nil {
		t.Error("series without step should error")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.5, 0.55, 0.6, 1.0}
	h := NewHistogram(xs, 4)
	if h.N != len(xs) {
		t.Errorf("N = %d", h.N)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("counts sum to %d", total)
	}
	// Mode bin contains the two 0.5 samples (plus 0.6).
	if m := h.Mode(); m < 0.5 || m > 0.75 {
		t.Errorf("mode = %v", m)
	}
	// CDF is monotone from 0 to 1.
	prev := -1.0
	for x := -0.5; x <= 1.5; x += 0.1 {
		c := h.CDFAt(x)
		if c < prev-1e-9 || c < 0 || c > 1 {
			t.Fatalf("CDF not monotone at %v: %v after %v", x, c, prev)
		}
		prev = c
	}
	if h.CDFAt(2) != 1 {
		t.Errorf("CDF(2) = %v", h.CDFAt(2))
	}
	out := h.Render(20)
	if !strings.Contains(out, "█") {
		t.Error("render missing bars")
	}
}

func TestHistogramEdges(t *testing.T) {
	if h := NewHistogram(nil, 3); h.N != 0 {
		t.Error("empty histogram")
	}
	// Constant data occupies one bin.
	h := NewHistogram([]float64{5, 5, 5}, 4)
	if h.N != 3 {
		t.Errorf("constant N = %d", h.N)
	}
	// NaN samples are skipped.
	h = NewHistogram([]float64{1, math.NaN(), 2}, 2)
	if h.N != 2 {
		t.Errorf("NaN not skipped: N = %d", h.N)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero bins should panic")
		}
	}()
	NewHistogram([]float64{1}, 0)
}
