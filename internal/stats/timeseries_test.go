package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := Series{Start: time.Second, Step: time.Second, Values: []float64{1, 2, 3, 4}}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Duration() != 4*time.Second {
		t.Errorf("Duration = %v", s.Duration())
	}
	if s.TimeAt(2) != 3*time.Second {
		t.Errorf("TimeAt(2) = %v", s.TimeAt(2))
	}
	if s.Peak() != 4 || s.Mean() != 2.5 {
		t.Errorf("Peak/Mean = %v/%v", s.Peak(), s.Mean())
	}
	if (Series{}).Duration() != 0 || (Series{}).Peak() != 0 {
		t.Error("empty series misbehaves")
	}
}

func TestDownsample(t *testing.T) {
	s := Series{Step: time.Second, Values: []float64{1, 3, 5, 7, 9}}
	d := s.Downsample(2 * time.Second)
	want := []float64{2, 6, 9} // last window is partial
	if len(d.Values) != len(want) {
		t.Fatalf("Downsample len = %d, want %d", len(d.Values), len(want))
	}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Errorf("Downsample[%d] = %v, want %v", i, d.Values[i], want[i])
		}
	}
	if d.Step != 2*time.Second {
		t.Errorf("Downsample step = %v", d.Step)
	}
	// Window smaller than step is a no-op.
	same := s.Downsample(time.Millisecond)
	if same.Len() != s.Len() {
		t.Error("Downsample with tiny window should be identity")
	}
}

// TestDownsampleEdges pins the degenerate inputs: partial final windows
// keep their exact partial mean, a window equal to the step is the
// identity, a zero or negative window cannot divide by zero, and a series
// with no step (never sampled) passes through untouched.
func TestDownsampleEdges(t *testing.T) {
	// Partial final window: 5 samples into 3s windows → [mean(1,3,5), mean(7,9)].
	s := Series{Start: time.Second, Step: time.Second, Values: []float64{1, 3, 5, 7, 9}}
	d := s.Downsample(3 * time.Second)
	if len(d.Values) != 2 || d.Values[0] != 3 || d.Values[1] != 8 {
		t.Errorf("partial final window: got %v, want [3 8]", d.Values)
	}
	if d.Start != s.Start || d.Step != 3*time.Second {
		t.Errorf("downsampled start/step = %v/%v, want %v/3s", d.Start, d.Step, s.Start)
	}
	// Window == step: identity (per == 1).
	if got := s.Downsample(time.Second); len(got.Values) != len(s.Values) || got.Step != s.Step {
		t.Errorf("window==step should be identity, got %v step %v", got.Values, got.Step)
	}
	// Zero and negative windows: identity, no panic, no zero division.
	for _, w := range []time.Duration{0, -time.Second} {
		if got := s.Downsample(w); len(got.Values) != len(s.Values) {
			t.Errorf("Downsample(%v) mangled the series: %v", w, got.Values)
		}
	}
	// Window not a multiple of the step truncates to whole steps: 2.5s of
	// 1s samples → per = 2.
	if got := s.Downsample(2500 * time.Millisecond); got.Step != 2*time.Second || len(got.Values) != 3 {
		t.Errorf("fractional window: step %v len %d, want 2s len 3", got.Step, len(got.Values))
	}
	// Zero-step series (never sampled): identity, no division by zero.
	empty := Series{Values: []float64{4, 2}}
	if got := empty.Downsample(time.Minute); len(got.Values) != 2 || got.Step != 0 {
		t.Errorf("zero-step series should pass through, got %+v", got)
	}
	// Empty values: empty result, correct metadata.
	none := Series{Step: time.Second}
	if got := none.Downsample(4 * time.Second); len(got.Values) != 0 || got.Step != 4*time.Second {
		t.Errorf("empty series downsample = %+v", got)
	}
	// Downsampled partial window still reconciles with TimeAbove on the
	// raw series when the limit separates whole windows — the rollup
	// never invents threshold crossings.
	raw := Series{Step: time.Second, Values: []float64{0, 0, 0, 2, 2}}
	if raw.Downsample(5 * time.Second).Values[0] != raw.Mean() {
		t.Error("single-window downsample must equal the series mean")
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		n := 8 * (1 + int(seed%9+9)%9)
		s := Series{Step: time.Second, Values: make([]float64, n)}
		for i := range s.Values {
			s.Values[i] = rng.Float64() * 1000
		}
		d := s.Downsample(4 * time.Second)
		return almostEqual(d.Mean(), s.Mean(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxRise(t *testing.T) {
	// Ramp 0..5 with step 1s: max rise within 2s window is 2.
	s := Series{Step: time.Second, Values: []float64{0, 1, 2, 3, 4, 5}}
	if got := s.MaxRise(2 * time.Second); got != 2 {
		t.Errorf("MaxRise(2s) = %v, want 2", got)
	}
	if got := s.MaxRise(10 * time.Second); got != 5 {
		t.Errorf("MaxRise(10s) = %v, want 5", got)
	}
	// A falling series still reports the best (possibly tiny) rise; here none.
	f := Series{Step: time.Second, Values: []float64{5, 4, 3}}
	if got := f.MaxRise(2 * time.Second); got > 0 {
		t.Errorf("MaxRise falling = %v, want <= 0", got)
	}
	// Spike then recovery: window must catch the trough-to-peak rise.
	sp := Series{Step: time.Second, Values: []float64{10, 2, 9, 3, 3}}
	if got := sp.MaxRise(time.Second); got != 7 {
		t.Errorf("MaxRise spike = %v, want 7", got)
	}
	if got := (Series{}).MaxRise(time.Second); got != 0 {
		t.Errorf("MaxRise empty = %v, want 0", got)
	}
}

func TestMaxRiseMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		n := 2 + int(seed%61+61)%61
		s := Series{Step: 100 * time.Millisecond, Values: make([]float64, n)}
		for i := range s.Values {
			s.Values[i] = rng.Float64() * 100
		}
		window := time.Duration(1+int(seed%7+7)%7) * 100 * time.Millisecond
		span := int(window / s.Step)
		brute := 0.0
		found := false
		for j := 1; j < n; j++ {
			for i := j - span; i < j; i++ {
				if i < 0 {
					continue
				}
				if r := s.Values[j] - s.Values[i]; !found || r > brute {
					brute, found = r, true
				}
			}
		}
		got := s.MaxRise(window)
		if !found {
			return got == 0
		}
		return almostEqual(got, brute, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	s := Series{Start: 0, Step: time.Second, Values: []float64{0, 1, 2, 3, 4, 5}}
	sub := s.Slice(2*time.Second, 4*time.Second)
	if sub.Len() != 2 || sub.Values[0] != 2 || sub.Values[1] != 3 {
		t.Errorf("Slice = %+v", sub)
	}
	if sub.Start != 2*time.Second {
		t.Errorf("Slice start = %v", sub.Start)
	}
	// Clipping beyond bounds.
	all := s.Slice(-time.Hour, time.Hour)
	if all.Len() != 6 {
		t.Errorf("Slice clipped len = %d", all.Len())
	}
	empty := s.Slice(10*time.Second, 20*time.Second)
	if empty.Len() != 0 {
		t.Errorf("Slice out of range len = %d", empty.Len())
	}
}
