package stats

import (
	"math"
	"time"
)

// Series is a regularly sampled timeseries: Values[i] was observed at
// Start + i*Step. It is the interchange format between the simulator's
// telemetry and the experiment harnesses.
type Series struct {
	Start  time.Duration // offset of the first sample from simulation start
	Step   time.Duration // sampling interval, > 0
	Values []float64
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.Values) }

// Duration returns the time span covered by the series.
func (s Series) Duration() time.Duration {
	if len(s.Values) == 0 {
		return 0
	}
	return time.Duration(len(s.Values)) * s.Step
}

// TimeAt returns the timestamp of sample i.
func (s Series) TimeAt(i int) time.Duration {
	return s.Start + time.Duration(i)*s.Step
}

// Downsample returns a new series whose samples are means over windows of
// the given size. window must be a positive multiple of s.Step; a trailing
// partial window is averaged over the samples it contains.
func (s Series) Downsample(window time.Duration) Series {
	if s.Step <= 0 || window < s.Step {
		return s
	}
	per := int(window / s.Step)
	if per <= 1 {
		return s
	}
	out := Series{Start: s.Start, Step: time.Duration(per) * s.Step}
	for i := 0; i < len(s.Values); i += per {
		end := i + per
		if end > len(s.Values) {
			end = len(s.Values)
		}
		out.Values = append(out.Values, Mean(s.Values[i:end]))
	}
	return out
}

// MaxRise returns the largest increase of the series within any window of
// the given duration: max over (i, j) with TimeAt(j)-TimeAt(i) <= window and
// j > i of Values[j]-Values[i]. This implements the paper's "max power
// spike in N seconds" metric (Table 4). It returns 0 for series with fewer
// than two samples or a non-positive result if the series never rises.
func (s Series) MaxRise(window time.Duration) float64 {
	if len(s.Values) < 2 || s.Step <= 0 {
		return 0
	}
	span := int(window / s.Step)
	if span < 1 {
		span = 1
	}
	best := math.Inf(-1)
	// Sliding-window minimum via monotonic deque of indices.
	deque := make([]int, 0, span+1)
	for j := range s.Values {
		lo := j - span
		for len(deque) > 0 && deque[0] < lo {
			deque = deque[1:]
		}
		if len(deque) > 0 {
			if rise := s.Values[j] - s.Values[deque[0]]; rise > best {
				best = rise
			}
		}
		for len(deque) > 0 && s.Values[deque[len(deque)-1]] >= s.Values[j] {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// Slice returns the sub-series covering [from, to) relative to simulation
// start. Samples outside the series are clipped.
func (s Series) Slice(from, to time.Duration) Series {
	if s.Step <= 0 || len(s.Values) == 0 {
		return Series{Start: from, Step: s.Step}
	}
	lo := int((from - s.Start) / s.Step)
	hi := int((to - s.Start) / s.Step)
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if lo >= hi {
		return Series{Start: from, Step: s.Step}
	}
	return Series{Start: s.TimeAt(lo), Step: s.Step, Values: s.Values[lo:hi]}
}

// TimeAbove returns the total time the series spends strictly above the
// limit, counting each sample as one step. With the limit set to the
// brake threshold this is the breach-seconds safety metric of the fault
// experiments.
func (s Series) TimeAbove(limit float64) time.Duration {
	n := 0
	for _, v := range s.Values {
		if v > limit {
			n++
		}
	}
	return time.Duration(n) * s.Step
}

// LongestRunAbove returns the duration of the longest consecutive run of
// samples strictly above the limit — the worst single excursion, the
// quantity the breaker's trip curve actually cares about.
func (s Series) LongestRunAbove(limit float64) time.Duration {
	best, run := 0, 0
	for _, v := range s.Values {
		if v > limit {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return time.Duration(best) * s.Step
}

// Peak returns the maximum sample value, or 0 for an empty series.
func (s Series) Peak() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return Max(s.Values)
}

// Mean returns the mean sample value.
func (s Series) Mean() float64 { return Mean(s.Values) }
