package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// Autocorrelation returns the lag-k autocorrelation of xs (Pearson between
// the series and itself shifted by lag). It errors on short input, bad
// lags, or zero variance.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag <= 0 {
		return 0, errors.New("stats: non-positive lag")
	}
	if len(xs) <= lag+1 {
		return 0, ErrEmpty
	}
	return Pearson(xs[:len(xs)-lag], xs[lag:])
}

// Autocorrelation returns the series' autocorrelation at the given time
// lag (rounded to whole samples).
func (s Series) Autocorrelation(lag time.Duration) (float64, error) {
	if s.Step <= 0 {
		return 0, errors.New("stats: series without a step")
	}
	k := int((lag + s.Step/2) / s.Step)
	return Autocorrelation(s.Values, k)
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Min    float64
	Width  float64
	Counts []int
	N      int
	// Underflow/Overflow count samples outside [Min, Min+Width*len(Counts)).
	Underflow, Overflow int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min, max] of the data. It panics on a non-positive bin count and
// returns a zero histogram for empty input.
func NewHistogram(xs []float64, bins int) Histogram {
	if bins <= 0 {
		panic("stats: non-positive bin count")
	}
	if len(xs) == 0 {
		return Histogram{Counts: make([]int, bins)}
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	h := Histogram{
		Min:    lo,
		Width:  (hi - lo) / float64(bins),
		Counts: make([]int, bins),
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		i := int((x - lo) / h.Width)
		switch {
		case i < 0:
			h.Underflow++
		case i >= bins:
			// The max lands exactly on the upper edge; fold it into the
			// last bin.
			if x <= hi {
				h.Counts[bins-1]++
				h.N++
			} else {
				h.Overflow++
			}
		default:
			h.Counts[i]++
			h.N++
		}
	}
	return h
}

// Mode returns the midpoint of the most populated bin.
func (h Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Min + (float64(best)+0.5)*h.Width
}

// CDFAt returns the empirical cumulative fraction of samples at or below x.
func (h Histogram) CDFAt(x float64) float64 {
	if h.N == 0 {
		return 0
	}
	var cum int
	for i, c := range h.Counts {
		upper := h.Min + float64(i+1)*h.Width
		if x >= upper {
			cum += c
			continue
		}
		// Partial bin: linear interpolation within the bin.
		lower := h.Min + float64(i)*h.Width
		if x > lower {
			cum += int(float64(c) * (x - lower) / h.Width)
		}
		break
	}
	return float64(cum) / float64(h.N)
}

// Render draws the histogram as horizontal bars of at most width cells.
func (h Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("█", c*width/maxC)
		fmt.Fprintf(&b, "%8.3f..%8.3f │%-*s %d\n",
			h.Min+float64(i)*h.Width, h.Min+float64(i+1)*h.Width, width, bar, c)
	}
	return b.String()
}
