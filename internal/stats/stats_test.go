package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{4}, 4},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got := Sum(xs); got != 8 {
		t.Errorf("Sum = %v, want 8", got)
	}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v, want -2", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v, want +Inf", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %v, want -Inf", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance singleton = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {105, 50},
		{40, 32}, // rank 1.6 -> 20 + 0.6*(35-20) = 29... check below
	}
	// rank = p/100*(n-1); p=40 -> rank 1.6 -> 20*(0.4)+35*(0.6)=29
	cases[6].want = 29
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", ys)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := 1 + int(seed%97+97)%97
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson identical direction = %v, %v; want 1, nil", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson opposite = %v, %v; want -1, nil", r, err)
	}
	if _, err := Pearson(xs, xs[:3]); err == nil {
		t.Error("Pearson mismatched lengths: want error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("Pearson short input: want error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("Pearson zero variance: want error")
	}
}

func TestPearsonBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		n := 2 + int(seed%31+31)%31
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200, 0, 400}
	pred := []float64{110, 180, 5, 400}
	got, err := MAPE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	// |10/100| + |20/200| + skip + |0/400| over 3 = 0.2/3
	want := (0.1 + 0.1 + 0) / 3
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("MAPE = %v, want %v", got, want)
	}
	if _, err := MAPE(actual, pred[:2]); err == nil {
		t.Error("MAPE mismatched lengths: want error")
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("MAPE all-zero actual: want error")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4}, 4)
	if got[0] != 0.5 || got[1] != 1 {
		t.Errorf("Normalize = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Normalize by zero: want panic")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Min != 1 || d.Max != 5 || d.P50 != 3 {
		t.Errorf("Summarize = %+v", d)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}
