package stats_test

import (
	"fmt"
	"time"

	"polca/internal/stats"
)

func ExamplePercentile() {
	latencies := []float64{12, 15, 11, 48, 13, 14, 90, 12}
	fmt.Printf("p50 = %.1f\n", stats.Percentile(latencies, 50))
	fmt.Printf("p99 = %.1f\n", stats.Percentile(latencies, 99))
	// Output:
	// p50 = 13.5
	// p99 = 87.1
}

func ExampleMAPE() {
	reference := []float64{0.60, 0.62, 0.65}
	simulated := []float64{0.61, 0.61, 0.66}
	mape, _ := stats.MAPE(reference, simulated)
	fmt.Printf("MAPE = %.1f%%\n", mape*100)
	// Output:
	// MAPE = 1.6%
}

func ExampleSeries_MaxRise() {
	// Row power rising 3 points per 2 s sample: the largest rise any 40 s
	// window can contain is 20 samples' worth.
	s := stats.Series{Step: 2 * time.Second, Values: make([]float64, 60)}
	for i := range s.Values {
		s.Values[i] = 0.5 + 0.003*float64(i)
	}
	fmt.Printf("max rise in 40s = %.2f\n", s.MaxRise(40*time.Second))
	// Output:
	// max rise in 40s = 0.06
}

func ExampleSeries_Downsample() {
	s := stats.Series{Step: time.Second, Values: []float64{1, 3, 5, 7}}
	d := s.Downsample(2 * time.Second)
	fmt.Println(d.Values)
	// Output:
	// [2 6]
}
