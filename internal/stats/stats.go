// Package stats provides the small statistical toolkit used throughout the
// POLCA reproduction: descriptive statistics, percentiles, Pearson
// correlation, mean absolute percentage error (MAPE), and histogram
// summaries. All functions are pure and operate on float64 slices.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts the input, so xs
// is not modified. Percentile returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires xs to be sorted
// ascending; it performs no allocation.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. It returns an error if the slices differ in length, are shorter
// than two elements, or either has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched lengths")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MAPE returns the mean absolute percentage error between the actual and
// predicted series, as a fraction (0.03 == 3%). Zero-valued actual samples
// are skipped to avoid division by zero. MAPE returns an error if the series
// differ in length or no valid samples remain.
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, errors.New("stats: mismatched lengths")
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - predicted[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n), nil
}

// Normalize returns a copy of xs with every element divided by denom.
// It panics if denom is zero.
func Normalize(xs []float64, denom float64) []float64 {
	if denom == 0 {
		panic("stats: normalize by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / denom
	}
	return out
}

// Describe summarizes a sample.
type Describe struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Describe for xs. Empty input yields a zero Describe.
func Summarize(xs []float64) Describe {
	if len(xs) == 0 {
		return Describe{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Describe{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P50:    PercentileSorted(sorted, 50),
		P95:    PercentileSorted(sorted, 95),
		P99:    PercentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// Jain returns Jain's fairness index of the values: (Σx)² / (n·Σx²),
// ranging from 1/n (one value holds everything) to 1 (perfect equality).
// The scenario reports apply it to per-class SLO attainment, so a policy
// that buys aggregate attainment by starving one class scores visibly
// worse than one that degrades evenly. Empty or all-zero input yields 1
// (nothing to be unfair about).
func Jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
