// Package paper benchmarks regenerate every table and figure of the
// paper's evaluation (one Benchmark per artifact, logging the reproduced
// rows) and measure the throughput of the simulation substrate itself.
//
// Run with:
//
//	go test -bench=. -benchmem
package paper

import (
	"math/rand"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/experiments"
	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/obs"
	"polca/internal/plan"
	"polca/internal/polca"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/trace"
)

// benchExperiment regenerates one paper artifact per iteration and logs its
// rows on the first.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.QuickOptions()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1) // defeat the simulation cache
		res, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: %s\n%s", res.ID, res.Title, res.Text)
		}
	}
}

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "tab1") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "tab4") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "tab5") }
func BenchmarkTable6(b *testing.B)    { benchExperiment(b, "tab6") }
func BenchmarkFigure3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkTraceFit(b *testing.B)  { benchExperiment(b, "fit") }
func BenchmarkFigure13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFigure15a(b *testing.B) { benchExperiment(b, "fig15a") }
func BenchmarkFigure15b(b *testing.B) { benchExperiment(b, "fig15b") }
func BenchmarkFigure16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFigure18(b *testing.B)  { benchExperiment(b, "fig18") }

// --- Substrate micro-benchmarks ---

// BenchmarkEngineEvents measures raw discrete-event dispatch throughput.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.New(1)
	var tick func(sim.Time)
	n := 0
	tick = func(now sim.Time) {
		n++
		if n < b.N {
			eng.After(time.Millisecond, tick)
		}
	}
	eng.After(time.Millisecond, tick)
	b.ResetTimer()
	eng.Run()
	if n != b.N {
		b.Fatalf("dispatched %d events, want %d", n, b.N)
	}
}

// BenchmarkQueuePushPop measures heap insert+extract throughput with
// batches of out-of-order events (the queue's steady-state access pattern).
func BenchmarkQueuePushPop(b *testing.B) {
	eng := sim.New(1)
	nop := func(sim.Time) {}
	const batch = 512
	var x uint32 = 1
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		for k := 0; k < batch; k++ {
			x = x*1664525 + 1013904223 // cheap LCG for scattered offsets
			eng.After(time.Duration(x%1000)*time.Millisecond, nop)
		}
		eng.Run()
	}
}

// BenchmarkTimerStop measures the schedule-then-cancel cycle that dominates
// the cluster simulator's phase replanning. Canceled events must not
// accumulate: the engine compacts tombstones, so memory stays bounded no
// matter how many timers a six-week run starts and stops.
func BenchmarkTimerStop(b *testing.B) {
	eng := sim.New(1)
	nop := func(sim.Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eng.AfterCancelable(time.Hour, nop)
		t.Stop()
	}
	if eng.Pending() != 0 {
		b.Fatalf("Pending = %d after stopping every timer, want 0", eng.Pending())
	}
}

// tracerSink is read through a package-level variable so the compiler cannot
// prove the receiver nil and fold the disabled path away — the benchmark must
// measure what instrumented production code actually pays.
var tracerSink *obs.Tracer

// BenchmarkTracerDisabled measures the cost an instrumentation site pays when
// tracing is off (nil tracer). The observability contract in DESIGN.md holds
// this to a couple of nanoseconds and zero allocations.
func BenchmarkTracerDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tracerSink.Emit(obs.Event{
			At:   sim.Time(i) * time.Millisecond,
			Kind: obs.KindCapApply, Server: 3, Pool: obs.PoolLow,
			MHz: 1200, Reason: "rung.engage",
		})
	}
}

// BenchmarkTracerEnabled measures the recording path, periodically resetting
// so the event buffer (and benchmark memory) stays bounded.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := obs.NewTracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(obs.Event{
			At:   sim.Time(i) * time.Millisecond,
			Kind: obs.KindCapApply, Server: 3, Pool: obs.PoolLow,
			MHz: 1200, Reason: "rung.engage",
		})
		if tr.Len() >= 1<<20 {
			tr.Reset()
		}
	}
}

// BenchmarkRand measures named-stream derivation (one per subsystem per
// simulation).
func BenchmarkRand(b *testing.B) {
	eng := sim.New(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eng.Rand("arrivals") == nil {
			b.Fatal("nil stream")
		}
	}
}

// BenchmarkGPUPhase measures the analytical GPU model.
func BenchmarkGPUPhase(b *testing.B) {
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	p, err := plan.NewInference(plan.InferenceConfig{
		Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16,
		BatchSize: 1, InputTokens: 2048, OutputTokens: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := dev.Run(p.Prompt)
		if e.Duration <= 0 {
			b.Fatal("empty execution")
		}
	}
}

// BenchmarkInferencePlan measures plan construction (done once per request
// in the cluster simulator).
func BenchmarkInferencePlan(b *testing.B) {
	m := llm.MustByName("BLOOM-176B")
	for i := 0; i < b.N; i++ {
		_, err := plan.NewInference(plan.InferenceConfig{
			Model: m, DType: llm.FP16, BatchSize: 1,
			InputTokens: 1024 + i%1024, OutputTokens: 128,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowHour measures end-to-end cluster simulation speed and reports
// simulated-seconds per wall-second.
func BenchmarkRowHour(b *testing.B) {
	cfg := cluster.Production()
	cfg.BaseServers = 40
	shape := cfg.Shape()
	rate := 0.6 * float64(cfg.Servers()) / shape.MeanServiceSec
	rates := make([]float64, 60)
	for i := range rates {
		rates[i] = rate
	}
	arrPlan := trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		eng := sim.New(int64(i + 1))
		row := cluster.MustRow(eng, cfg, polca.New(polca.DefaultConfig()))
		m := row.Run(arrPlan)
		if m.Util.Len() == 0 {
			b.Fatal("no telemetry")
		}
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(float64(b.N)*3600/wall, "sim_s/wall_s")
	}
}

// BenchmarkServeDay measures the request-level serving backend end to end:
// one op simulates a full day on a 16-server serve-mode row (continuous
// batching, KV accounting, POLCA capping) and reports wall-clock seconds per
// simulated day plus engine events per wall-second — the numbers the
// BENCH_*.json trajectory tracks for ROADMAP's site-scale goal.
func BenchmarkServeDay(b *testing.B) {
	cfg := cluster.Production()
	cfg.BaseServers = 16
	cfg.Serve = &serve.Config{}
	shape := cfg.Shape()
	rate := 0.6 * float64(cfg.Servers()) / shape.MeanServiceSec
	rates := make([]float64, 24*60)
	for i := range rates {
		rates[i] = rate
	}
	arrPlan := trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32}
	b.ResetTimer()
	start := time.Now()
	var events uint64
	for i := 0; i < b.N; i++ {
		eng := sim.New(int64(i + 1))
		row := cluster.MustRow(eng, cfg, polca.New(polca.DefaultConfig()))
		m := row.Run(arrPlan)
		if m.Serve.Batches == 0 {
			b.Fatal("serve row formed no batches")
		}
		events += eng.Dispatched()
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(wall/float64(b.N), "wall_s/day")
		b.ReportMetric(float64(events)/wall, "events/s")
	}
}

// BenchmarkTrainingRowHour measures the training-cluster simulator.
func BenchmarkTrainingRowHour(b *testing.B) {
	cfg := cluster.ProductionTraining()
	for i := 0; i < b.N; i++ {
		util, err := cluster.SimulateTraining(cfg, time.Hour, rand.New(rand.NewSource(int64(i+1))))
		if err != nil {
			b.Fatal(err)
		}
		if util.Len() == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkReferenceTrace measures synthetic trace generation.
func BenchmarkReferenceTrace(b *testing.B) {
	m := trace.ProductionInference()
	for i := 0; i < b.N; i++ {
		ref := m.Reference(24*time.Hour, rand.New(rand.NewSource(int64(i+1))))
		if ref.Len() == 0 {
			b.Fatal("empty reference")
		}
	}
}
