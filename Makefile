GO ?= go

# ci is the tier-1 gate: static checks, a full build, the race-enabled test
# suite (which exercises the parallel sweep executor), a short substrate
# benchmark smoke, a chaos smoke run, and a fault-spec fuzz smoke.
.PHONY: ci
ci: vet staticcheck rand-audit build test bench-smoke chaos fuzz-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools with zero findings required. The
# binary is not vendored; the target is a no-op where it is not installed
# (the GitHub workflow installs a pinned version, so CI always runs it).
.PHONY: staticcheck
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# rand-audit fails if randomness-sensitive packages construct their own RNGs
# instead of drawing from named sim.Engine.Rand streams. Direct rand.New /
# rand.NewSource calls there would silently break byte-identical reruns;
# this grep lint keeps new offenders out.
.PHONY: rand-audit
rand-audit:
	@offenders=$$(grep -rn 'rand\.New\|rand\.NewSource' \
		--include='*.go' internal/workload internal/serve \
		| grep -v _test.go; true); \
	if [ -n "$$offenders" ]; then \
		echo "rand-audit: direct RNG construction in engine-seeded packages:"; \
		echo "$$offenders"; \
		echo "draw from sim.Engine.Rand(name) instead"; \
		exit 1; \
	fi; \
	echo "rand-audit: clean"

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test -race -timeout 45m ./...

# bench-smoke runs the engine, tracer, serving-scheduler, and quantile-sketch
# micro-benchmarks briefly — enough to catch an allocation regression on the
# event path, on the disabled observability fast paths (tracer and span
# tracer), in the continuous-batching iteration loop, or in the t-digest Add
# path without paying for a full run.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run '^$$' -bench 'Engine|Tracer|Scheduler|Quantile' -benchmem -benchtime 200000x . ./internal/serve ./internal/obs

# bench runs every benchmark, including full artifact regeneration.
.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# chaos is a short fault-sweep smoke: one day on a small row under the mixed
# scenario with every degradation path armed. It exercises the injector, the
# telemetry guard, the deadman watchdog, bounded retries, and stale-command
# drops end to end; any panic or spec-parse regression fails the target.
.PHONY: chaos
chaos:
	$(GO) run ./cmd/polca-sim -days 1 -servers 16 \
		-faults "tdrop=0.05,tspike=0.02:0.5,tstuck=10h+30m,crash=6h+20,oobburst=11h+15m,kill=2@8h+1h,slow=2:1.5" \
		-guard -watchdog 5 -oob-retries 8 -oob-backoff 4s -drop-stale

# fuzz-smoke runs the fault-spec parser fuzzer briefly: round-trip and
# never-panic properties over the DSL grammar.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFaultSpec -fuzztime 10s ./internal/faults

# cover writes a coverage profile across all packages and prints the
# per-function tail plus the total.
.PHONY: cover
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 20
