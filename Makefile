GO ?= go

# ci is the tier-1 gate: static checks, a full build, the race-enabled test
# suite (which exercises the parallel sweep executor), and a short substrate
# benchmark smoke.
.PHONY: ci
ci: vet build test bench-smoke

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test -race -timeout 45m ./...

# bench-smoke runs the engine and tracer micro-benchmarks briefly — enough to
# catch an allocation regression on the event path or on the disabled
# observability fast path without paying for a full run.
.PHONY: bench-smoke
bench-smoke:
	$(GO) test -run '^$$' -bench 'Engine|Tracer' -benchmem -benchtime 200000x .

# bench runs every benchmark, including full artifact regeneration.
.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# cover writes a coverage profile across all packages and prints the
# per-function tail plus the total.
.PHONY: cover
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 20
