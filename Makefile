GO ?= go

# ci is the tier-1 gate: static checks, a full build, the race-enabled test
# suite (which exercises the parallel sweep executor), a short substrate
# benchmark smoke, schema validation of the committed BENCH_*.json
# trajectory, a chaos smoke run, and a fault-spec fuzz smoke.
.PHONY: ci
ci: vet staticcheck rand-audit build test bench-smoke bench-check chaos chaos-serve fuzz-smoke scenarios replay-golden

.PHONY: vet
vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools with zero findings required. The
# binary is not vendored; the target is a no-op where it is not installed
# (the GitHub workflow installs a pinned version, so CI always runs it).
.PHONY: staticcheck
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# rand-audit fails if randomness-sensitive packages construct their own RNGs
# instead of drawing from named sim.Engine.Rand streams. Direct rand.New /
# rand.NewSource calls there would silently break byte-identical reruns;
# this grep lint keeps new offenders out.
.PHONY: rand-audit
rand-audit:
	@offenders=$$(grep -rn 'rand\.New\|rand\.NewSource' \
		--include='*.go' internal/workload internal/serve internal/scenario \
		| grep -v _test.go; true); \
	if [ -n "$$offenders" ]; then \
		echo "rand-audit: direct RNG construction in engine-seeded packages:"; \
		echo "$$offenders"; \
		echo "draw from sim.Engine.Rand(name) instead"; \
		exit 1; \
	fi; \
	echo "rand-audit: clean"

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test -race -timeout 45m ./...

# The hot-path benchmark set tracked by the BENCH_*.json trajectory: the
# substrate micro-benchmarks (event heap, timers, observability fast paths,
# quantile sketch, serving-scheduler iteration) plus the end-to-end
# serve-mode day. BENCH_MICRO is the -bench regexp for the fast ones;
# BenchmarkServeDay runs separately because one iteration simulates a full
# 16-server day and needs its own -benchtime. BENCH_REQUIRE lists every
# name; polca-bench -require fails the target if any stops matching, so a
# renamed benchmark can never silently drop out of the smoke.
BENCH_MICRO = ^(BenchmarkEngineEvents|BenchmarkQueuePushPop|BenchmarkTimerStop|BenchmarkTracerDisabled|BenchmarkTracerEnabled|BenchmarkServeTracerDisabled|BenchmarkSpanTracerDisabled|BenchmarkQuantileSketch|BenchmarkScheduler|BenchmarkTSDBIngest|BenchmarkRuleEval|BenchmarkRetryQueue|BenchmarkScenarioSample|BenchmarkDecisionRecord)$$
BENCH_REQUIRE = BenchmarkEngineEvents,BenchmarkQueuePushPop,BenchmarkTimerStop,BenchmarkTracerDisabled,BenchmarkTracerEnabled,BenchmarkServeTracerDisabled,BenchmarkSpanTracerDisabled,BenchmarkQuantileSketch,BenchmarkScheduler,BenchmarkTSDBIngest,BenchmarkRuleEval,BenchmarkRetryQueue,BenchmarkScenarioSample,BenchmarkDecisionRecord,BenchmarkServeDay
# The telemetry ingest, rule-evaluation, failover-requeue, scenario
# request-generation, and decision-input recording ticks run inside the
# simulator's hot loop; -zero-alloc hard-fails the build the moment any of
# them allocates, with no baseline artifact needed.
BENCH_ZERO_ALLOC = BenchmarkTSDBIngest,BenchmarkRuleEval,BenchmarkRetryQueue,BenchmarkScenarioSample,BenchmarkDecisionRecord
BENCH_PKGS = . ./internal/serve ./internal/obs ./internal/cluster ./internal/scenario

# bench-smoke runs the hot-path set briefly — enough to catch an allocation
# regression on the event path, the disabled observability fast paths, the
# continuous-batching iteration loop, or the t-digest Add path without
# paying for a full run — then asserts every listed benchmark actually ran.
.PHONY: bench-smoke
bench-smoke:
	@set -e; out=$$(mktemp); \
	$(GO) test -run '^$$' -bench '$(BENCH_MICRO)' -benchmem -benchtime 200000x $(BENCH_PKGS) > $$out; \
	$(GO) test -run '^$$' -bench '^BenchmarkServeDay$$' -benchmem -benchtime 1x . >> $$out; \
	cat $$out; \
	$(GO) run ./cmd/polca-bench -require '$(BENCH_REQUIRE)' -zero-alloc '$(BENCH_ZERO_ALLOC)' $$out; \
	rm -f $$out

# bench-json runs the hot-path set at full benchtime and writes the
# versioned polca-bench/v1 artifact (BENCH_JSON, default BENCH_new.json).
# Compare against the last committed snapshot with
#   go run ./cmd/polca-bench -compare BENCH_N.json BENCH_new.json
# which fails on >15% ns/op regressions and on any allocs/op increase.
BENCH_JSON ?= BENCH_new.json
.PHONY: bench-json
bench-json:
	@set -e; out=$$(mktemp); \
	$(GO) test -run '^$$' -bench '$(BENCH_MICRO)' -benchmem $(BENCH_PKGS) > $$out; \
	$(GO) test -run '^$$' -bench '^BenchmarkServeDay$$' -benchmem -benchtime 3x . >> $$out; \
	cat $$out; \
	$(GO) run ./cmd/polca-bench -require '$(BENCH_REQUIRE)' -zero-alloc '$(BENCH_ZERO_ALLOC)' $$out > /dev/null; \
	$(GO) run ./cmd/polca-bench -o $(BENCH_JSON) $$out; \
	rm -f $$out

# bench-check schema-validates every committed BENCH_*.json so the
# trajectory artifacts cannot rot unnoticed.
.PHONY: bench-check
bench-check:
	$(GO) run ./cmd/polca-bench -check BENCH_*.json

# bench-compare regenerates the artifact and diffs it against the newest
# committed BENCH_*.json. Wall-clock deltas are advisory on shared runners;
# allocs/op increases always fail.
.PHONY: bench-compare
bench-compare:
	@set -e; \
	base=$$(ls BENCH_*.json 2>/dev/null | grep -v '^$(BENCH_JSON)$$' | sort -V | tail -1); \
	if [ -z "$$base" ]; then echo "bench-compare: no committed BENCH_*.json baseline"; exit 1; fi; \
	$(MAKE) bench-json BENCH_JSON=$(BENCH_JSON); \
	$(GO) run ./cmd/polca-bench -compare -advisory-time $$base $(BENCH_JSON)

# bench runs every benchmark, including full artifact regeneration.
.PHONY: bench
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# chaos is a short fault-sweep smoke: one day on a small row under the mixed
# scenario with every degradation path armed. It exercises the injector, the
# telemetry guard, the deadman watchdog, bounded retries, and stale-command
# drops end to end; any panic or spec-parse regression fails the target.
.PHONY: chaos
chaos:
	$(GO) run ./cmd/polca-sim -days 1 -servers 16 \
		-faults "tdrop=0.05,tspike=0.02:0.5,tstuck=10h+30m,crash=6h+20,oobburst=11h+15m,kill=2@8h+1h,slow=2:1.5" \
		-guard -watchdog 5 -oob-retries 8 -oob-backoff 4s -drop-stale

# chaos-serve is the serve-mode counterpart: the race-enabled acceptance
# suite for request failover, class shedding, circuit breaking, and drain
# windows, plus one end-to-end chaos day on the serving backend with the
# full fault-tolerance stack armed.
.PHONY: chaos-serve
chaos-serve:
	$(GO) test -race -run 'TestServeFailoverBeatsDropOnly|TestServeClassShedProtectsCritical|TestServeSafetyInvariantUnderFaults|TestServeFaultToleranceDeterministic|TestServeKVConservationAcrossFailover|TestServeQuiescentFTDoesNotPerturb|TestServeDrainWindows' ./internal/cluster
	$(GO) run ./cmd/polca-sim -days 1 -servers 16 -serve \
		-faults "tdrop=0.05,crash=6h+20,oobburst=11h+15m,kill=4@8h+1h,drain=2@14h+30m" \
		-guard -watchdog 5 -oob-retries 8 -oob-backoff 4s -drop-stale \
		-retries 3 -retry-backoff 4s -class-shed -circuit-sheds 10 -watchdog-drain

# fuzz-smoke runs the DSL parser fuzzers briefly: round-trip and
# never-panic properties over the faults and scenario grammars.
.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzFaultSpec -fuzztime 10s ./internal/faults
	$(GO) test -run '^$$' -fuzz FuzzScenarioSpec -fuzztime 10s ./internal/scenario

# scenarios regenerates the committed scenarios/*.scn files from the builtin
# library and verifies the two are in lockstep (plus the canonical
# round-trip of every file). Run it after editing a builtin in
# internal/scenario/library.go.
.PHONY: scenarios
scenarios:
	$(GO) run ./internal/scenario/gen
	$(GO) test -run 'TestLibraryFilesMatchBuiltins|TestBuiltinsAreCanonical' ./internal/scenario

# replay-golden pins the counterfactual-replay pipeline end to end: the
# polca-replay CLI over the committed decision-log fixture must reproduce
# the golden report byte for byte (self-replay fidelity line included),
# and -self must exit clean. Refresh after intentional report changes with
#   go test -run TestGolden -update ./cmd/polca-replay
.PHONY: replay-golden
replay-golden:
	$(GO) test -run 'TestGolden|TestSelfMode' ./cmd/polca-replay
	$(GO) run ./cmd/polca-replay -self -no-provenance cmd/polca-replay/testdata/decisions.jsonl

# cover writes a coverage profile across all packages and prints the
# per-function tail plus the total.
.PHONY: cover
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 20
