// Quickstart: build a 40-server BLOOM inference row, attach the POLCA
// dual-threshold power manager, oversubscribe it by 30%, and simulate six
// hours of production-shaped traffic.
package main

import (
	"fmt"
	"log"
	"time"

	"polca/internal/cluster"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

func main() {
	// 1. Describe the row: Table 2's production configuration, with 30%
	//    more servers deployed under the same power budget.
	cfg := cluster.Production()
	cfg.AddedFraction = 0.30

	// 2. Generate a production-shaped arrival trace (§6.4): a diurnal
	//    reference power curve, fitted to a request arrival plan, scaled
	//    for the extra servers.
	horizon := 6 * time.Hour
	eng := sim.New(42)
	ref := trace.ProductionInference().Reference(horizon, eng.Rand("reference"))
	plan, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	plan = plan.Scale(1 + cfg.AddedFraction)

	// 3. Attach POLCA (Table 5's dual-threshold policy) and run.
	row, err := cluster.NewRow(eng, cfg, polca.New(polca.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	m := row.Run(plan)

	// 4. Report.
	fmt.Printf("POLCA quickstart: %d servers on a %d-server power budget (%.0f kW)\n",
		cfg.Servers(), cfg.BaseServers, m.Provisioned/1000)
	fmt.Printf("  simulated %v, served %d requests\n",
		horizon, m.Completed[workload.Low]+m.Completed[workload.High])
	fmt.Printf("  power: mean %.1f%%, peak %.1f%% of provisioned — %d power brakes\n",
		m.Util.Mean()*100, m.Util.Peak()*100, m.BrakeEvents)
	for _, pri := range []workload.Priority{workload.High, workload.Low} {
		lat := m.LatencySec[pri]
		fmt.Printf("  %s priority: p50 %.1fs, p99 %.1fs over %d requests\n",
			pri, stats.Percentile(lat, 50), stats.Percentile(lat, 99), len(lat))
	}
	fmt.Printf("  capping commands issued: %d (%d failed silently and were retried)\n",
		m.LockCommands, m.FailedCommands)
}
