// Oversubscribe: sweep the number of extra servers deployed under a fixed
// row power budget, with and without POLCA, and check the Table 6 SLOs —
// the core question of §6.5: how far can this row be oversubscribed?
package main

import (
	"fmt"
	"log"
	"time"

	"polca/internal/cluster"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// run simulates one day at the given oversubscription level.
func run(added float64, ctrl cluster.Controller, seed int64) *cluster.Metrics {
	cfg := cluster.Production()
	cfg.AddedFraction = added
	eng := sim.New(seed)
	ref := trace.ProductionInference().Reference(24*time.Hour, eng.Rand("reference"))
	plan, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	return cluster.MustRow(eng, cfg, ctrl).Run(plan.Scale(1 + added))
}

func main() {
	const seed = 7
	slos := workload.SLOs()
	levels := []float64{0, 0.15, 0.30, 0.45}

	// The SLO baseline: the un-oversubscribed, uncapped row.
	base := run(0, polca.NoCap{}, seed)
	baseP50 := map[workload.Priority]float64{}
	baseP99 := map[workload.Priority]float64{}
	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		baseP50[pri] = stats.Percentile(base.LatencySec[pri], 50)
		baseP99[pri] = stats.Percentile(base.LatencySec[pri], 99)
	}

	fmt.Println("Oversubscribing a 40-server power budget (1 simulated day per point)")
	fmt.Printf("%-8s %-8s %8s %9s %9s %9s %9s %8s\n",
		"added", "policy", "peak", "LP p50", "LP p99", "HP p50", "HP p99", "brakes")
	for _, added := range levels {
		for _, mk := range []func() cluster.Controller{
			func() cluster.Controller { return polca.NoCap{} },
			func() cluster.Controller { return polca.New(polca.DefaultConfig()) },
		} {
			ctrl := mk()
			m := run(added, ctrl, seed)
			impact := func(pri workload.Priority, p float64, base float64) float64 {
				return stats.Percentile(m.LatencySec[pri], p)/base - 1
			}
			lp50 := impact(workload.Low, 50, baseP50[workload.Low])
			lp99 := impact(workload.Low, 99, baseP99[workload.Low])
			hp50 := impact(workload.High, 50, baseP50[workload.High])
			hp99 := impact(workload.High, 99, baseP99[workload.High])
			ok := "ok"
			if m.BrakeEvents > 0 ||
				lp50 > slos[workload.Low].P50Impact || lp99 > slos[workload.Low].P99Impact ||
				hp50 > slos[workload.High].P50Impact || hp99 > slos[workload.High].P99Impact {
				ok = "SLO MISS"
			}
			name := "No-cap"
			if _, isPolca := ctrl.(*polca.Policy); isPolca {
				name = "POLCA"
			}
			fmt.Printf("%-8s %-8s %7.1f%% %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%% %8d  %s\n",
				fmt.Sprintf("+%.0f%%", added*100), name, m.Util.Peak()*100,
				lp50*100, lp99*100, hp50*100, hp99*100, m.BrakeEvents, ok)
		}
	}
	fmt.Println("\nLatency impacts are relative to the default uncapped row; Table 6 SLOs:")
	fmt.Printf("  high priority: p50 < %.0f%%, p99 < %.0f%%; low priority: p50 < %.0f%%, p99 < %.0f%%; 0 brakes\n",
		slos[workload.High].P50Impact*100, slos[workload.High].P99Impact*100,
		slos[workload.Low].P50Impact*100, slos[workload.Low].P99Impact*100)
}
