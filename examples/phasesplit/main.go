// Phasesplit: explore the paper's §5.2 design implication — phase-aware
// power management — on BLOOM-176B: first per-phase frequency scaling on
// colocated GPUs, then full prompt/token disaggregation across pools with
// the KV-cache handoff cost accounted for.
package main

import (
	"fmt"
	"log"

	"polca/internal/disagg"
	"polca/internal/llm"
	"polca/internal/plan"
)

func main() {
	cfg := plan.InferenceConfig{
		Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16,
		BatchSize: 1, InputTokens: 2048, OutputTokens: 512,
	}

	fmt.Println("== Phase-aware frequency scaling (colocated) ==")
	for _, mhz := range []float64{1305, 1110, 990} {
		cmp, err := disagg.ComparePhaseAware(cfg, mhz)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("token clock %4.0f MHz: saves %4.1f%% mean power for %4.1f%% latency "+
			"(uniform lock would cost %4.1f%%)\n",
			mhz, cmp.PhaseAwareSavings*100, cmp.PhaseAwareSlowdown*100,
			(float64(cmp.UniformLow.Latency)/float64(cmp.Baseline.Latency)-1)*100)
	}

	fmt.Println("\n== Prompt/token disaggregation across GPU pools ==")
	for _, ic := range []float64{12.5, 25, 50} { // 100/200/400 Gb/s
		rep, err := disagg.EvaluateSplit(disagg.SplitConfig{
			Workload:         cfg,
			TokenClockMHz:    1110,
			InterconnectGBps: ic,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interconnect %3.0f GB/s: pools 1:%.0f, KV handoff %3.0f ms, "+
			"latency +%.1f%%, fleet power -%.1f%%\n",
			ic, rep.PoolRatio, rep.TransferSeconds*1000,
			rep.LatencyOverhead*100, rep.PowerSavings*100)
	}

	fmt.Println("\nOnly the token pool is down-clocked: prompts keep full-speed GPUs,")
	fmt.Println("and the pool sizing follows the phase-time ratio (paper §5.2 / Splitwise).")
}
