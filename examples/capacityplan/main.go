// Capacityplan: size a new row from first principles, the way §5 suggests —
// derate servers from their nameplate rating to realistic peaks, analyze a
// historical power trace for headroom, train POLCA thresholds from it, and
// estimate how many additional servers the same budget can host.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"polca/internal/capacity"
	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/server"
	"polca/internal/trace"
)

func main() {
	// Step 1 — derating (§5): nameplate vs realistic peak server power.
	d := capacity.DeratingFor(server.DGXA100(gpu.A100SXM80GB()))
	fmt.Printf("Server derating analysis (%s):\n", d.Server)
	fmt.Printf("  nameplate rating:       %5.0f W\n", d.RatedWatts)
	fmt.Printf("  realistic peak:         %5.0f W\n", d.PeakWatts)
	fmt.Printf("  reclaimable per server: %5.0f W\n\n", d.Reclaimable)

	// Step 2 — headroom analysis on a two-week inference power trace.
	cfg := cluster.Production()
	ref := trace.ProductionInference().Reference(14*24*time.Hour, rand.New(rand.NewSource(11)))
	h := capacity.AnalyzeHeadroom(ref, cfg.OOBLatency)
	fmt.Printf("Inference row trace (%d servers, %.0f kW budget):\n",
		cfg.BaseServers, cfg.ProvisionedWatts()/1000)
	fmt.Printf("  observed peak utilization: %5.1f%%\n", h.PeakUtil*100)
	fmt.Printf("  observed mean utilization: %5.1f%%\n", h.MeanUtil*100)
	fmt.Printf("  worst 40s power rise:      %5.1f%% (the OOB capping blind spot)\n\n", h.Spike40s*100)

	// Step 3+4 — train thresholds (§6.3) and estimate capacity under the
	// capped-peak model.
	plan, err := capacity.PlanRow(cfg, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trained POLCA thresholds: T1 = %.0f%%, T2 = %.0f%%\n\n",
		plan.Thresholds.T1*100, plan.Thresholds.T2*100)
	fmt.Printf("Capacity estimate under POLCA:\n")
	fmt.Printf("  capped busy server power:    %6.0f W (vs %.0f W uncapped)\n",
		plan.CappedBusyWatts, plan.UncappedBusyWatts)
	fmt.Printf("  servers the budget can host: %d (%.0f%% more than the %d provisioned)\n\n",
		plan.MaxServers, plan.AddedFraction*100, cfg.BaseServers)

	// Step 5 — project to the whole datacenter floor (Figure 2 topology),
	// with the §6.7 cooling sanity check.
	floor, err := capacity.PlanFloorCapacity(cluster.ProductionTopology(), cfg, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cluster.ProductionTopology().Describe())
	fmt.Printf("\nFloor-level gain at +%.0f%%: %d extra servers (%.0f%% of a datacenter floor avoided)\n",
		floor.FloorPlan.Added*100, floor.FloorPlan.GainedServers, floor.FloorPlan.DatacentersAvoided*100)
	fmt.Printf("Rack cooling headroom at realistic peak: %.0f%% (§6.7: not the bottleneck)\n\n",
		floor.CoolingHeadroom*100)

	fmt.Println("The paper deploys 30% more servers with zero power brakes (§6.6);")
	fmt.Println("run `polca-sim -added 0.30` to validate this estimate in simulation.")
}
