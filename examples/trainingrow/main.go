// Trainingrow: reproduce Table 4's training column and the §5.1 analysis —
// a row of synchronized fine-tuning jobs runs at ~97% of its provisioned
// power with coordinated swings, leaving almost nothing to oversubscribe,
// and every mitigation has a cost.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"polca/internal/cluster"
	"polca/internal/render"
	"polca/internal/stats"
)

func main() {
	cfg := cluster.ProductionTraining()
	fmt.Printf("Training row: %d servers, %.0f kW provisioned\n",
		cfg.Servers(), cfg.ProvisionedWatts()/1000)
	for _, j := range cfg.Jobs {
		fmt.Printf("  job: %-16s x%d servers\n", j.Profile.Model.Name, j.Servers)
	}

	util, err := cluster.SimulateTraining(cfg, time.Hour, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.SummarizeUtilization("training", util)
	fmt.Printf("\nTable 4 (training): peak %.1f%%, mean %.1f%%, max 2s swing %.1f%%\n",
		s.PeakUtilization*100, s.MeanUtilization*100, s.MaxSpike2s*100)
	fmt.Printf("Headroom for oversubscription: %.1f%% (the paper observes ~3%%)\n\n",
		(1-s.PeakUtilization)*100)

	// A two-minute window makes the coordinated iteration swings visible.
	window := util.Slice(10*time.Minute, 12*time.Minute)
	fmt.Print(render.Lines(map[string]stats.Series{"row power": window}, render.ChartOptions{
		Title: "Coordinated training power swings (2-minute window)",
		YMin:  0.3, YMax: 1.05, Height: 10, YLabel: "fraction of provisioned power",
	}))

	// §5.1 mitigations, side by side.
	fmt.Println("\nMitigations (§5.1):")
	mitigations := []struct {
		name   string
		mutate func(*cluster.TrainingRowConfig)
	}{
		{"power cap 325 W", func(c *cluster.TrainingRowConfig) { c.PowerCapWatts = 325 }},
		{"frequency lock 1.1 GHz", func(c *cluster.TrainingRowConfig) { c.LockClockMHz = 1100 }},
		{"overlapped communication", func(c *cluster.TrainingRowConfig) {
			for i := range c.Jobs {
				c.Jobs[i].Profile.SyncOverlap = 0.75
				c.Jobs[i].Profile.SyncSeconds *= 0.5
			}
		}},
	}
	for _, m := range mitigations {
		mc := cluster.ProductionTraining()
		m.mutate(&mc)
		mu, err := cluster.SimulateTraining(mc, 30*time.Minute, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		ms := cluster.SummarizeUtilization(m.name, mu)
		fmt.Printf("  %-26s peak %.1f%%, swing %.1f%%\n",
			m.name, ms.PeakUtilization*100, ms.MaxSpike2s*100)
	}
	fmt.Println("\nCapping clips peaks, locking costs throughput, overlap smooths swings")
	fmt.Println("but raises the mean draw — training rows stay poor oversubscription")
	fmt.Println("candidates either way (Insight 9).")
}
