// Characterize: reproduce the paper's server-level power characterization
// for two generative LLMs — the two-phase inference power signature
// (Figure 6), sensitivity to the input/batch/output knobs (Figure 8), and
// the frequency-locking trade-off (Figure 10).
package main

import (
	"fmt"
	"log"

	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/profiler"
)

func main() {
	for _, name := range []string{"Llama2-70B", "BLOOM-176B"} {
		model := llm.MustByName(name)
		fmt.Printf("=== %s (%d GPUs, FP16) ===\n", model.Name, model.InferenceGPUs)

		// Two-phase power signature.
		base := plan.InferenceConfig{Model: model, DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 256}
		m, err := profiler.MeasureInference(base, profiler.Knob{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prompt spike peaks at %.2f TDP; whole-request mean %.2f TDP; %.1f tok/s\n",
			m.PeakTDP, m.MeanTDP, m.TokensSec)

		// Knob sensitivity: which configuration parameter moves power, and
		// which moves latency (Insight 5)?
		big := base
		big.InputTokens = 8192
		mBig, _ := profiler.MeasureInference(big, profiler.Knob{})
		long := base
		long.OutputTokens = 1024
		mLong, _ := profiler.MeasureInference(long, profiler.Knob{})
		fmt.Printf("input 2048->8192: peak %.2f -> %.2f TDP, latency %.1fs -> %.1fs\n",
			m.PeakTDP, mBig.PeakTDP, m.Latency.Seconds(), mBig.Latency.Seconds())
		fmt.Printf("output 256->1024: peak %.2f -> %.2f TDP, latency %.1fs -> %.1fs\n",
			m.PeakTDP, mLong.PeakTDP, m.Latency.Seconds(), mLong.Latency.Seconds())

		// Frequency locking: reclaimed power vs lost performance.
		pts, err := profiler.FrequencySweep(base, []float64{1305, 1275, 1110})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("frequency locking trade-off:")
		for _, p := range pts {
			fmt.Printf("  %4.0f MHz: reclaims %4.1f%% peak power for %4.1f%% performance\n",
				p.Knob.LockClockMHz, p.PeakPowerReduction*100, p.PerfReduction*100)
		}
		fmt.Println()
	}
	fmt.Println("Takeaway (Insight 7): frequency locking reclaims far more power than")
	fmt.Println("it costs in performance — the lever POLCA builds on.")
}
