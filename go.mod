module polca

go 1.22
